/**
 * @file
 * Lightweight named-statistics registry.
 *
 * Modules register scalar counters with a StatGroup; the simulator
 * aggregates, prints, and diffs them at experiment boundaries. This is a
 * deliberately small subset of the gem5 stats package: scalars, derived
 * ratios, and distributions are all pccsim needs.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace pccsim {

/** A single named 64-bit counter. */
class Counter
{
  public:
    Counter() = default;

    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    void operator+=(u64 delta) { value_ += delta; }

    u64 value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    u64 value_ = 0;
};

/**
 * A flat group of named counters.
 *
 * Counters are owned by the group and referenced by stable pointers, so
 * hot paths pay only an increment. The group can snapshot itself for
 * interval-based reporting.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "") : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register (or fetch) a counter by name. Pointers remain valid. */
    Counter &counter(const std::string &name);

    /** Read a counter's value; 0 if it was never registered. */
    u64 get(const std::string &name) const;

    /** All counters as (name, value) pairs, sorted by name. */
    std::vector<std::pair<std::string, u64>> all() const;

    /** Zero every counter. */
    void resetAll();

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    // std::map keeps pointer stability across inserts.
    std::map<std::string, Counter> counters_;
};

/** Safe ratio helper: returns 0 when the denominator is 0. */
inline double
ratio(u64 num, u64 den)
{
    return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

/** Percentage helper built on ratio(). */
inline double
percent(u64 num, u64 den)
{
    return 100.0 * ratio(num, den);
}

/** Geometric mean of a vector of positive values (1.0 for empty input). */
double geomean(const std::vector<double> &values);

} // namespace pccsim
