#include "util/host_profile.hpp"

#include <chrono>

#include <sys/resource.h>

namespace pccsim::util {

HostProfile &
HostProfile::global()
{
    // Leaked on purpose: atexit hooks (perf/telemetry export writers)
    // read the profile during shutdown, after function-local statics
    // with ordinary lifetimes may already be gone.
    static HostProfile *profile = new HostProfile();
    return *profile;
}

void
HostProfile::add(const std::string &phase, u64 nanos)
{
    std::lock_guard<std::mutex> lock(mutex_);
    phases_[phase] += nanos;
}

std::vector<std::pair<std::string, u64>>
HostProfile::phases() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return {phases_.begin(), phases_.end()};
}

u64
HostProfile::nowNanos()
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

u64
HostProfile::peakRssBytes()
{
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
#ifdef __APPLE__
    return static_cast<u64>(usage.ru_maxrss); // bytes on macOS
#else
    return static_cast<u64>(usage.ru_maxrss) * 1024; // KiB on Linux
#endif
}

} // namespace pccsim::util
