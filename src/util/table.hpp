/**
 * @file
 * ASCII table and CSV emitters used by the benchmark harnesses to print
 * paper-style rows/series.
 */

#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace pccsim {

/**
 * Column-aligned ASCII table builder.
 *
 * Usage:
 *   Table t({"app", "speedup"});
 *   t.row({"BFS", Table::fmt(1.31)});
 *   std::cout << t.str();
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append one row; must match the header width. */
    void row(std::vector<std::string> cells);

    /** Render with padded columns and a separator under the header. */
    std::string str() const;

    /** Render as CSV (no padding). */
    std::string csv() const;

    /** Format a double with the given precision. */
    static std::string fmt(double value, int precision = 3);

    /** Format a percentage (value expected already in percent units). */
    static std::string pct(double value, int precision = 1);

    size_t rows() const { return rows_.size(); }

    /** Raw cells, for serializers (telemetry::Emitter JSON sink). */
    const std::vector<std::string> &header() const { return header_; }
    const std::vector<std::vector<std::string>> &cells() const
    {
        return rows_;
    }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Write a string to a file, creating parent-less paths as-is. */
void writeFile(const std::string &path, const std::string &contents);

} // namespace pccsim
