/**
 * @file
 * Fundamental scalar types shared by every pccsim module.
 */

#pragma once

#include <cstdint>

namespace pccsim {

/** Simulated virtual or physical byte address. */
using Addr = std::uint64_t;

/** Virtual page number (address >> page shift, for some page size). */
using Vpn = std::uint64_t;

/** Physical frame number. */
using Pfn = std::uint64_t;

/** Simulated time expressed in CPU cycles. */
using Cycles = std::uint64_t;

/** Simulated process identifier. */
using Pid = std::uint32_t;

/** Core (hardware thread) identifier. */
using CoreId = std::uint32_t;

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

} // namespace pccsim
