/**
 * @file
 * Fundamental scalar types shared by every pccsim module.
 */

#pragma once

#include <cstdint>

namespace pccsim {

/** Simulated virtual or physical byte address. */
using Addr = std::uint64_t;

/** Virtual page number (address >> page shift, for some page size). */
using Vpn = std::uint64_t;

/** Physical frame number. */
using Pfn = std::uint64_t;

/** Simulated time expressed in CPU cycles. */
using Cycles = std::uint64_t;

/** Simulated process identifier. */
using Pid = std::uint32_t;

/**
 * Tenant identifier on a multi-tenant node. Tenants map 1:1 onto
 * simulated processes (tenant i runs as pid i), so the two identifier
 * spaces coincide; the distinct type documents which role a value
 * plays at an interface.
 */
using TenantId = std::uint32_t;

/**
 * Address-space identifier tagged into TLB entries (x86 PCID / Arm
 * ASID). 12 bits on real x86 hardware; 16 bits here so a pid can be
 * used as its process's ASID directly at any simulated tenant count.
 */
using Asid = std::uint16_t;

/** Core (hardware thread) identifier. */
using CoreId = std::uint32_t;

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

} // namespace pccsim
