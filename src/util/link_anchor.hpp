/**
 * @file
 * Linker anchors that keep self-registering translation units alive
 * through static-archive linking.
 *
 * Every component here builds into a static library, and a linker only
 * pulls in an archive member that something already linked refers to.
 * A TU whose only job is running a static registrar has no such
 * reference, so it would be silently dropped — and with it the policy
 * or hardware backend it registers. The fix is a named pair: the
 * registrar TU defines an anchor symbol, and the registry's own TU
 * (always linked, because selection resolves through it) references
 * the anchor, forcing the archive member in.
 */

#pragma once

/** Emit the symbol an archive-member reference can hang onto. */
#define PCCSIM_DEFINE_LINK_ANCHOR(name)                                \
    extern "C" int pccsim_link_anchor_##name;                          \
    int pccsim_link_anchor_##name = 0;

/**
 * Reference a registrar TU's anchor so the linker keeps it. The
 * reference must survive compilation to become a relocation — an
 * ordinary unused internal-linkage constant would be discarded before
 * the linker ever saw it — hence [[gnu::used]].
 */
#define PCCSIM_REFERENCE_LINK_ANCHOR(name)                             \
    extern "C" int pccsim_link_anchor_##name;                          \
    namespace {                                                        \
    [[gnu::used]] [[maybe_unused]] int *const                          \
        pccsim_link_anchor_ref_##name = &pccsim_link_anchor_##name;    \
    }
