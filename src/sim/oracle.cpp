#include "sim/oracle.hpp"

#include <sstream>

#include "util/log.hpp"

namespace pccsim::sim {

std::string
OracleDivergence::toString() const
{
    std::ostringstream os;
    os << "oracle divergence at access " << access_index << " (core "
       << core << ", vaddr 0x" << std::hex << vaddr << std::dec
       << "): " << detail;
    return os.str();
}

OracleError::OracleError(OracleDivergence divergence)
    : std::runtime_error(divergence.toString()),
      divergence_(std::move(divergence))
{
}

// ---- RefSetAssoc ----

RefSetAssoc::RefSetAssoc(tlb::TlbParams params)
    : sets_(params.sets() == 0 ? 1 : params.sets()),
      ways_(params.ways == 0 ? 1 : params.ways)
{
}

bool
RefSetAssoc::lookup(Vpn vpn)
{
    auto set_it = sets_map_.find(setIndexOf(vpn));
    if (set_it == sets_map_.end())
        return false;
    auto it = set_it->second.find(vpn);
    if (it == set_it->second.end())
        return false;
    it->second = ++clock_;
    return true;
}

bool
RefSetAssoc::access(Vpn vpn)
{
    if (lookup(vpn))
        return true;
    insert(vpn);
    return false;
}

void
RefSetAssoc::insert(Vpn vpn)
{
    auto &set = sets_map_[setIndexOf(vpn)];
    if (auto it = set.find(vpn); it != set.end()) {
        it->second = ++clock_;
        return;
    }
    if (set.size() >= ways_) {
        // Evict the least-recently-stamped entry. The real structure
        // prefers empty ways before evicting; an std::map set holds
        // only valid entries, so "size == ways" is exactly "no empty
        // way" and the resident contents evolve identically.
        auto victim = set.begin();
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (it->second < victim->second)
                victim = it;
        }
        set.erase(victim);
    }
    set[vpn] = ++clock_;
}

u64
RefSetAssoc::invalidateRange(Vpn lo, Vpn hi)
{
    u64 dropped = 0;
    for (auto &[index, set] : sets_map_) {
        for (auto it = set.lower_bound(lo); it != set.end() && it->first < hi;)
        {
            it = set.erase(it);
            ++dropped;
        }
    }
    return dropped;
}

u64
RefSetAssoc::validCount() const
{
    u64 n = 0;
    for (const auto &[index, set] : sets_map_)
        n += set.size();
    return n;
}

// ---- RefTlbHierarchy ----

RefTlbHierarchy::RefTlbHierarchy(const tlb::TlbGeometry &geometry)
    : geometry_(geometry),
      l1_4k_(geometry.l1_4k),
      l1_2m_(geometry.l1_2m),
      l1_1g_(geometry.l1_1g),
      l2_(geometry.l2)
{
}

bool
RefTlbHierarchy::l2Holds(mem::PageSize size) const
{
    if (size == mem::PageSize::Huge1G)
        return geometry_.l2_holds_1g;
    return true;
}

Vpn
RefTlbHierarchy::l2Key(Vpn vpn, mem::PageSize size)
{
    return (vpn << 2) | static_cast<Vpn>(size);
}

RefSetAssoc &
RefTlbHierarchy::l1Of(mem::PageSize size)
{
    switch (size) {
      case mem::PageSize::Base4K: return l1_4k_;
      case mem::PageSize::Huge2M: return l1_2m_;
      case mem::PageSize::Huge1G: return l1_1g_;
    }
    return l1_4k_;
}

tlb::HitLevel
RefTlbHierarchy::access(Addr vaddr, mem::PageSize size)
{
    const Vpn vpn = mem::vpnOf(vaddr, size);
    ++accesses_;
    if (l1Of(size).lookup(vpn)) {
        ++l1_hits_;
        return tlb::HitLevel::L1;
    }
    if (l2Holds(size) && l2_.lookup(l2Key(vpn, size))) {
        ++l2_hits_;
        l1Of(size).access(vpn); // victim-style refill into L1
        return tlb::HitLevel::L2;
    }
    ++walks_;
    return tlb::HitLevel::Miss;
}

void
RefTlbHierarchy::fill(Addr vaddr, mem::PageSize size)
{
    const Vpn vpn = mem::vpnOf(vaddr, size);
    l1Of(size).access(vpn);
    if (l2Holds(size))
        l2_.access(l2Key(vpn, size));
}

void
RefTlbHierarchy::shootdown(Addr base, u64 bytes)
{
    const auto drop = [&](RefSetAssoc &structure, mem::PageSize size,
                          bool keyed) {
        const Vpn lo = mem::vpnOf(base, size);
        const Vpn hi = mem::vpnOf(base + bytes - 1, size) + 1;
        if (keyed)
            structure.invalidateRange(l2Key(lo, size), l2Key(hi, size));
        else
            structure.invalidateRange(lo, hi);
    };
    drop(l1_4k_, mem::PageSize::Base4K, false);
    drop(l1_2m_, mem::PageSize::Huge2M, false);
    drop(l1_1g_, mem::PageSize::Huge1G, false);
    drop(l2_, mem::PageSize::Base4K, true);
    drop(l2_, mem::PageSize::Huge2M, true);
}

bool
RefTlbHierarchy::noteRepeatL1Hit(Addr vaddr, mem::PageSize size)
{
    // The stamp refresh the real path skips is harmless either way:
    // a last-translation-cache run touches no other page on this core,
    // so the page is MRU in its set whether or not each repeat bumps
    // its stamp.
    const bool hit = l1Of(size).lookup(mem::vpnOf(vaddr, size));
    ++accesses_;
    ++l1_hits_;
    return hit;
}

// ---- DiffChecker ----

DiffChecker::DiffChecker(OracleConfig config,
                         const tlb::TlbGeometry &geometry, u32 num_cores)
    : config_(config)
{
    PCCSIM_ASSERT(config_.sample_every >= 1,
                  "oracle sample_every must be >= 1");
    cores_.reserve(num_cores);
    for (u32 c = 0; c < num_cores; ++c)
        cores_.emplace_back(geometry);
}

void
DiffChecker::diverge(u32 core, Addr vaddr, std::string detail)
{
    throw OracleError(
        OracleDivergence{accesses_seen_, core, vaddr, std::move(detail)});
}

bool
DiffChecker::compareDue()
{
    return config_.sample_every <= 1 ||
           accesses_seen_ % config_.sample_every == 0;
}

void
DiffChecker::onAccess(u32 core, Pid pid, Addr vaddr,
                      mem::PageSize real_size, tlb::HitLevel real_level)
{
    (void)pid;
    ++accesses_seen_;

    // Shadow contract: between shootdowns/faults a page's mapping size
    // must not change. Enforced on every access (one map lookup that
    // the learning step needs anyway), independent of sampling.
    const Vpn region = mem::vpnOf(vaddr, mem::PageSize::Huge2M);
    auto it = region_size_.find(region);
    if (it == region_size_.end()) {
        region_size_.emplace(region, real_size);
    } else if (it->second != real_size) {
        diverge(core, vaddr,
                "mapping size changed without an intervening shootdown "
                "or fault (shadow " +
                    mem::nameOf(it->second) + ", real " +
                    mem::nameOf(real_size) + ")");
    }

    RefTlbHierarchy &ref = cores_[core];
    const tlb::HitLevel ref_level = ref.access(vaddr, real_size);
    if (ref_level == tlb::HitLevel::Miss)
        ref.fill(vaddr, real_size); // mirror the real walk-then-fill

    if (compareDue()) {
        ++compares_done_;
        if (ref_level != real_level) {
            const auto name = [](tlb::HitLevel l) {
                switch (l) {
                  case tlb::HitLevel::L1: return "L1";
                  case tlb::HitLevel::L2: return "L2";
                  case tlb::HitLevel::Miss: return "Miss";
                }
                return "?";
            };
            diverge(core, vaddr,
                    std::string("hit level mismatch (reference ") +
                        name(ref_level) + ", real " + name(real_level) +
                        ", size " + mem::nameOf(real_size) + ")");
        }
    }
}

void
DiffChecker::onLtcAccess(u32 core, Pid pid, Addr vaddr)
{
    (void)pid;
    ++accesses_seen_;
    const Vpn region = mem::vpnOf(vaddr, mem::PageSize::Huge2M);
    auto it = region_size_.find(region);
    if (it == region_size_.end()) {
        diverge(core, vaddr,
                "last-translation-cache hit on a region with no "
                "established mapping (stale fast path after a "
                "shootdown?)");
    }
    if (!cores_[core].noteRepeatL1Hit(vaddr, it->second)) {
        diverge(core, vaddr,
                "last-translation-cache hit but the translation is not "
                "L1-resident in the reference model (size " +
                    mem::nameOf(it->second) + ")");
    }
}

void
DiffChecker::onFault(u32 core, Pid pid, Addr vaddr, mem::PageSize filled)
{
    (void)pid;
    ++accesses_seen_;
    // A fault is a legitimate (re)establishment point for the mapping.
    region_size_[mem::vpnOf(vaddr, mem::PageSize::Huge2M)] = filled;
    cores_[core].fill(vaddr, filled);
}

void
DiffChecker::onShootdown(Addr base, u64 bytes)
{
    for (auto &core : cores_)
        core.shootdown(base, bytes);
    const Vpn lo = mem::vpnOf(base, mem::PageSize::Huge2M);
    const Vpn hi = mem::vpnOf(base + bytes - 1, mem::PageSize::Huge2M) + 1;
    region_size_.erase(region_size_.lower_bound(lo),
                       region_size_.lower_bound(hi));
}

void
DiffChecker::finish(u32 core, u64 real_accesses, u64 real_l1_hits,
                    u64 real_l2_hits, u64 real_walks)
{
    const RefTlbHierarchy &ref = cores_[core];
    if (ref.accesses() == real_accesses && ref.l1Hits() == real_l1_hits &&
        ref.l2Hits() == real_l2_hits && ref.walks() == real_walks) {
        return;
    }
    std::ostringstream os;
    os << "end-of-run TLB counter mismatch (reference accesses="
       << ref.accesses() << " l1=" << ref.l1Hits() << " l2=" << ref.l2Hits()
       << " walks=" << ref.walks() << "; real accesses=" << real_accesses
       << " l1=" << real_l1_hits << " l2=" << real_l2_hits
       << " walks=" << real_walks << ")";
    diverge(core, 0, os.str());
}

} // namespace pccsim::sim
