#include "sim/experiment.hpp"

#include <cstdio>

#include "sim/runner.hpp"
#include "util/stats.hpp"

namespace pccsim::sim {

SystemConfig
configFor(const ExperimentSpec &spec)
{
    SystemConfig cfg = SystemConfig::forScale(spec.workload.scale);
    cfg.num_cores = std::max<u32>(1, spec.lanes);
    cfg.policy = spec.policy;
    cfg.policy_str = spec.policy_str;
    cfg.hw = spec.hw;
    cfg.promotion_cap_percent = spec.cap_percent;
    cfg.frag_fraction = spec.frag_fraction;
    cfg.pcc_policy = spec.pcc_policy;
    cfg.telemetry = spec.telemetry;
    cfg.faults = spec.faults;
    cfg.check_invariants = spec.check_invariants;
    if (spec.interval_accesses > 0)
        cfg.interval_accesses = spec.interval_accesses;
    cfg.oracle = spec.oracle;
    cfg.mutation = spec.mutation;
    cfg.sampling = spec.sampling;
    cfg.seed = spec.workload.seed;
    if (spec.policy == PolicyKind::AllHuge) {
        // The "Max. Perf. with THPs" configuration: unfragmented,
        // ample memory, no budget.
        cfg.frag_fraction = 0.0;
        cfg.phys_headroom = 2.0;
        cfg.promotion_cap_percent = -1.0;
    }
    if (spec.tweak)
        spec.tweak(cfg);
    return cfg;
}

util::Status
applyPolicySelector(ExperimentSpec &spec, std::string_view selector)
{
    SystemConfig cfg;
    cfg.policy = spec.policy;
    cfg.policy_str = spec.policy_str;
    util::Status status = applyPolicySelector(cfg, selector);
    if (status.ok()) {
        spec.policy = cfg.policy;
        spec.policy_str = cfg.policy_str;
    }
    return status;
}

std::string
policyNameOf(const ExperimentSpec &spec)
{
    return spec.policy_str.empty() ? to_string(spec.policy)
                                   : spec.policy_str;
}

bool
handleListFlags(const std::string &policy_value,
                const std::string &hw_value)
{
    bool listed = false;
    if (policy_value == "list") {
        std::fputs(policyListText().c_str(), stdout);
        listed = true;
    }
    if (hw_value == "list") {
        std::fputs(hwListText().c_str(), stdout);
        listed = true;
    }
    return listed;
}

RunResult
runOne(const ExperimentSpec &spec)
{
    return runOne(spec, nullptr, nullptr);
}

RunResult
runOne(const ExperimentSpec &spec, std::atomic<u64> *progress,
       const std::atomic<bool> *cancel)
{
    auto workload = workloads::makeWorkload(spec.workload);
    SystemConfig cfg = configFor(spec);
    cfg.progress = progress;
    cfg.cancel = cancel;
    System system(std::move(cfg));
    return system.run(*workload, spec.lanes);
}

const std::vector<double> &
utilityCaps()
{
    static const std::vector<double> caps = {0,  1,  2,  4, 8,
                                             16, 32, 64, -1};
    return caps;
}

std::vector<CurvePoint>
utilityCurve(const ExperimentSpec &spec, const RunResult &baseline,
             Runner *runner)
{
    if (!runner)
        runner = &Runner::global();
    // Batch every non-trivial cap point so the runner can execute the
    // sweep in parallel and recall repeated points from its memo.
    std::vector<ExperimentSpec> points;
    for (double cap : utilityCaps()) {
        if (cap == 0.0)
            continue;
        ExperimentSpec point = spec;
        point.cap_percent = cap;
        points.push_back(std::move(point));
    }
    const auto results = runner->runMany(points);

    std::vector<CurvePoint> curve;
    size_t next = 0;
    for (double cap : utilityCaps()) {
        if (cap == 0.0) {
            // 0% promoted is by definition the 4KB baseline.
            curve.push_back({cap, 1.0, baseline.job().ptwPercent(), 0});
            continue;
        }
        const RunResult &result = *results[next++];
        curve.push_back({cap, speedup(baseline, result),
                         result.job().ptwPercent(),
                         result.job().promotions});
    }
    return curve;
}

double
geomeanSpeedup(const ExperimentSpec &spec, const DatasetSweep &sweep,
               Runner *runner)
{
    if (!runner)
        runner = &Runner::global();
    // Collect the (baseline, variant) pair of every dataset, then run
    // the whole sweep as one batch: baselines shared with other call
    // sites (BaselineCache, other figures) simulate only once.
    std::vector<ExperimentSpec> specs;
    for (graph::NetworkKind kind : sweep.networks) {
        for (int sorted = 0; sorted <= (sweep.include_sorted ? 1 : 0);
             ++sorted) {
            ExperimentSpec variant = spec;
            variant.workload.network = kind;
            variant.workload.dbg_sorted = sorted != 0;

            ExperimentSpec base = variant;
            base.policy = PolicyKind::Base;
            base.cap_percent = 0.0;

            specs.push_back(std::move(base));
            specs.push_back(std::move(variant));
        }
    }
    const auto results = runner->runMany(specs);

    std::vector<double> values;
    for (size_t i = 0; i + 1 < results.size(); i += 2)
        values.push_back(speedup(*results[i], *results[i + 1]));
    return geomean(values);
}

} // namespace pccsim::sim
