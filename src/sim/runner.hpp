/**
 * @file
 * Parallel, memoizing, crash-resilient experiment runner.
 *
 * The bench harnesses reproduce paper figures from many *independent*
 * simulations; the runner executes them across a fixed-size thread
 * pool while keeping the output bit-identical to a serial loop:
 *
 *  - determinism: every simulation is self-contained (its own System,
 *    Rng, FaultInjector seeded from the spec), results are returned in
 *    request order, and nothing about scheduling leaks into a result;
 *  - deduplication: identical specs inside one runMany() batch
 *    simulate once (baselines used to be re-run per variant);
 *  - memoization: results are cached across calls under a canonical
 *    spec key, so BaselineCache, geomeanSpeedup and the figure
 *    harnesses all share one simulation per distinct spec;
 *  - persistence: with RunnerOptions::journal_path set, completed
 *    results are appended to a crash-consistent on-disk journal
 *    (sim/journal.hpp) and preloaded into the memo at construction, so
 *    a sweep killed mid-run resumes from its last completed job;
 *  - supervision: runManyGuarded() runs each job under a watchdog
 *    (wall-clock deadline and/or progress-stall detection via the
 *    simulated-access heartbeat) and bounded retry-with-backoff,
 *    quarantining a hung/diverged/failed spec as a JobOutcome instead
 *    of wedging or aborting the whole batch.
 *
 * Specs whose `tweak` has no `tweak_key` cannot be keyed; they run on
 * every request (still in parallel) and are never cached or journaled.
 *
 * Memo lifetime: the memo (and journal handle) live exactly as long as
 * the Runner. Replacing the global runner via setGlobalJobs() or
 * setGlobalOptions() necessarily discards the old instance's memo —
 * every cached simulation is re-run on next request. This used to
 * happen silently; it is now counted in the process-wide
 * `runner.memo_discards` counter (globalMemoDiscards()) and logged
 * with the number of entries thrown away, so a harness reconfiguring
 * mid-run can see the cost. Configure parallelism *before* the first
 * simulation (BenchEnv does) to keep the counter at zero.
 */

#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/journal.hpp"
#include "telemetry/tail.hpp"
#include "util/thread_pool.hpp"

namespace pccsim::sim {

/**
 * Canonical memoization key of a spec: a serialization of every field
 * that reaches configFor()/makeWorkload() and can change the result.
 * OracleConfig is deliberately excluded (result-neutral: an oracle run
 * either produces the identical result or throws). Returns "" for
 * specs with an unkeyed tweak (not memoizable).
 */
std::string specKey(const ExperimentSpec &spec);

/** Construction-time configuration of a Runner. */
struct RunnerOptions
{
    /** Worker count; 0 selects the host concurrency. */
    u32 jobs = 0;

    /** On-disk result journal; empty = in-memory memo only. */
    std::string journal_path{};

    /**
     * Watchdog limits for runManyGuarded() jobs; 0 disables the
     * respective check. `deadline_ms` bounds one attempt's total wall
     * time; `stall_ms` bounds the time the simulated-access heartbeat
     * may stay flat. Note the heartbeat starts only once the workload
     * is set up — generous stall budgets avoid false positives on
     * setup-heavy specs (prefer the deadline for hang protection).
     */
    u64 deadline_ms = 0;
    u64 stall_ms = 0;

    /** Watchdog scan period. */
    u64 watchdog_poll_ms = 20;

    /**
     * Bounded retry for jobs failing with an ordinary error (e.g. an
     * injected host fault): attempt 1 + max_retries times, sleeping
     * retry_backoff_ms << (attempt-1) between tries. Divergences,
     * timeouts and stalls never retry.
     */
    u32 max_retries = 0;
    u64 retry_backoff_ms = 10;
};

/** Why a guarded job did not produce a result. */
enum class JobFail : u8
{
    None = 0,  //!< success
    Timeout,   //!< wall-clock deadline exceeded; run cancelled
    Stalled,   //!< progress heartbeat flat for stall_ms; cancelled
    Diverged,  //!< the differential oracle found a divergence
    Error,     //!< ordinary exception (after exhausting retries)
};

std::string to_string(JobFail fail);

/** Result-or-quarantine of one guarded job. */
struct JobOutcome
{
    /** The result; null unless fail == None. */
    std::shared_ptr<const RunResult> result;
    JobFail fail = JobFail::None;
    /** Diagnostic (exception text) when quarantined. */
    std::string message;
    /** Attempts consumed (0 when served from the memo). */
    u32 attempts = 0;

    bool ok() const { return fail == JobFail::None && result; }
};

class Runner
{
  public:
    /** @param jobs Worker count; 0 selects the host concurrency. */
    explicit Runner(u32 jobs = 0);
    explicit Runner(RunnerOptions options);
    ~Runner();

    Runner(const Runner &) = delete;
    Runner &operator=(const Runner &) = delete;

    u32 jobs() const { return jobs_; }
    const RunnerOptions &options() const { return options_; }

    /** Aggregate accounting across every run() / runMany() so far. */
    struct Stats
    {
        u64 requested = 0;       //!< specs handed to the runner
        u64 simulated = 0;       //!< simulations actually executed
        u64 memo_hits = 0;       //!< requests served by cache/dedup
        u64 total_accesses = 0;  //!< simulated accesses executed
        /**
         * Host ns spent inside System::run, summed over workers
         * (busy time). With jobs() > 1 this exceeds wall time — it is
         * the parallel speedup's *numerator*, never a latency — and on
         * an oversubscribed host timeslicing inflates it further.
         */
        u64 sim_nanos = 0;
        u64 wall_nanos = 0; //!< host ns spent blocked in runMany()
        /** Per-worker busy ns (sim_nanos split by thread), busiest first. */
        std::vector<u64> worker_busy_nanos;
        /**
         * Distribution of per-simulation busy ns/access across the
         * runs this process executed (memo hits excluded — they cost
         * nothing). The mean hides the one pathological run of a
         * sweep; --perf publishes this histogram's p50/p99/max and
         * bench_compare gates them like the mean.
         */
        telemetry::LatencyHistogram run_busy_ns_per_access;

        // ---- persistence and supervision ----
        u64 journal_loaded = 0;    //!< memo entries preloaded from disk
        u64 journal_malformed = 0; //!< journal lines skipped at load
        u64 journal_appends = 0;   //!< results persisted this process
        u64 journal_skipped = 0;   //!< unserializable results not persisted
        u64 quarantined = 0;       //!< guarded jobs that failed for good
        u64 retries = 0;           //!< guarded re-attempts taken
    };

    Stats stats() const;

    /** Memoized results currently held (journal preload included). */
    size_t memoSize() const;

    /** Run (or recall) one spec. */
    std::shared_ptr<const RunResult> run(const ExperimentSpec &spec);

    /**
     * Run a batch. Results arrive in spec order; duplicate keys within
     * the batch simulate once; previously-seen keys are recalled from
     * the memo. With jobs() == 1 the batch runs serially inline —
     * jobs() > 1 produces bit-identical results. Exceptions propagate
     * (all failures aggregated per util::ThreadPool::parallelMap); use
     * runManyGuarded() to contain them per job instead.
     */
    std::vector<std::shared_ptr<const RunResult>>
    runMany(const std::vector<ExperimentSpec> &specs);

    /**
     * Run a batch under supervision: every job is watched by the
     * deadline/stall watchdog (when configured), retried per
     * RunnerOptions on ordinary errors, and quarantined — never
     * thrown — on terminal failure. The batch always completes; a
     * hung or diverged spec costs its own slot only.
     */
    std::vector<JobOutcome>
    runManyGuarded(const std::vector<ExperimentSpec> &specs);

    /**
     * The process-wide runner used by the bench harnesses. Configure
     * it with setGlobalJobs()/setGlobalOptions() before first use
     * (BenchEnv does); reconfiguring later replaces the instance and
     * discards its memo (counted — see globalMemoDiscards()).
     */
    static Runner &global();
    static void setGlobalJobs(u32 jobs);
    static void setGlobalOptions(const RunnerOptions &options);

    /**
     * Process-wide `runner.memo_discards` counter: how many times a
     * global-runner reconfiguration threw away a non-empty memo.
     */
    static u64 globalMemoDiscards();

  private:
    struct Supervision;

    /** Run one spec (no memo): timing, stats, journal append. */
    std::shared_ptr<const RunResult>
    simulate(const ExperimentSpec &spec, const std::string &key,
             Supervision *supervision);

    /** simulate() wrapped in retry/quarantine; never throws. */
    JobOutcome runGuarded(const ExperimentSpec &spec,
                          const std::string &key,
                          Supervision *supervision);

    u32 jobs_;
    RunnerOptions options_;
    std::unique_ptr<util::ThreadPool> pool_; //!< created when jobs_ > 1
    std::unique_ptr<ResultJournal> journal_;

    mutable std::mutex mutex_;
    std::map<std::string, std::shared_ptr<const RunResult>> memo_;
    Stats stats_;
    std::map<std::thread::id, u64> worker_busy_;
};

} // namespace pccsim::sim
