/**
 * @file
 * Parallel, memoizing experiment runner.
 *
 * The bench harnesses reproduce paper figures from many *independent*
 * simulations; the runner executes them across a fixed-size thread
 * pool while keeping the output bit-identical to a serial loop:
 *
 *  - determinism: every simulation is self-contained (its own System,
 *    Rng, FaultInjector seeded from the spec), results are returned in
 *    request order, and nothing about scheduling leaks into a result;
 *  - deduplication: identical specs inside one runMany() batch
 *    simulate once (baselines used to be re-run per variant);
 *  - memoization: results are cached across calls under a canonical
 *    spec key, so BaselineCache, geomeanSpeedup and the figure
 *    harnesses all share one simulation per distinct spec.
 *
 * Specs whose `tweak` has no `tweak_key` cannot be keyed; they run on
 * every request (still in parallel) and are never cached.
 */

#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/experiment.hpp"
#include "util/thread_pool.hpp"

namespace pccsim::sim {

/**
 * Canonical memoization key of a spec: a serialization of every field
 * that reaches configFor()/makeWorkload(). Returns "" for specs with
 * an unkeyed tweak (not memoizable).
 */
std::string specKey(const ExperimentSpec &spec);

class Runner
{
  public:
    /** @param jobs Worker count; 0 selects the host concurrency. */
    explicit Runner(u32 jobs = 0);
    ~Runner();

    Runner(const Runner &) = delete;
    Runner &operator=(const Runner &) = delete;

    u32 jobs() const { return jobs_; }

    /** Aggregate accounting across every run() / runMany() so far. */
    struct Stats
    {
        u64 requested = 0;       //!< specs handed to the runner
        u64 simulated = 0;       //!< simulations actually executed
        u64 memo_hits = 0;       //!< requests served by cache/dedup
        u64 total_accesses = 0;  //!< simulated accesses executed
        /**
         * Host ns spent inside System::run, summed over workers
         * (busy time). With jobs() > 1 this exceeds wall time — it is
         * the parallel speedup's *numerator*, never a latency — and on
         * an oversubscribed host timeslicing inflates it further.
         */
        u64 sim_nanos = 0;
        u64 wall_nanos = 0; //!< host ns spent blocked in runMany()
        /** Per-worker busy ns (sim_nanos split by thread), busiest first. */
        std::vector<u64> worker_busy_nanos;
    };

    Stats stats() const;

    /** Run (or recall) one spec. */
    std::shared_ptr<const RunResult> run(const ExperimentSpec &spec);

    /**
     * Run a batch. Results arrive in spec order; duplicate keys within
     * the batch simulate once; previously-seen keys are recalled from
     * the memo. With jobs() == 1 the batch runs serially inline —
     * jobs() > 1 produces bit-identical results.
     */
    std::vector<std::shared_ptr<const RunResult>>
    runMany(const std::vector<ExperimentSpec> &specs);

    /**
     * The process-wide runner used by the bench harnesses. Configure
     * its parallelism with setGlobalJobs() before first use (BenchEnv
     * does); reconfiguring later discards the memo.
     */
    static Runner &global();
    static void setGlobalJobs(u32 jobs);

  private:
    std::shared_ptr<const RunResult> simulate(const ExperimentSpec &spec);

    u32 jobs_;
    std::unique_ptr<util::ThreadPool> pool_; //!< created when jobs_ > 1

    mutable std::mutex mutex_;
    std::map<std::string, std::shared_ptr<const RunResult>> memo_;
    Stats stats_;
    std::map<std::thread::id, u64> worker_busy_;
};

} // namespace pccsim::sim
