/**
 * @file
 * Top-level system configuration: hardware geometries, timing, OS
 * parameters, and the policy selector, grouped into the scale profiles
 * described in DESIGN.md.
 */

#pragma once

#include <atomic>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string_view>

#include "cache/cache.hpp"
#include "os/os.hpp"
#include "os/policies.hpp"
#include "pcc/pcc_unit.hpp"
#include "pt/walker.hpp"
#include "sim/fault_injector.hpp"
#include "sim/oracle.hpp"
#include "telemetry/report.hpp"
#include "tenant/tenant.hpp"
#include "tlb/geometry.hpp"
#include "util/status.hpp"
#include "workloads/registry.hpp"

namespace pccsim::sim {

/**
 * Deliberately planted hot-path bugs, used by the oracle's own tests
 * and the fuzz harness's self-check to prove the differential checker
 * actually catches the class of defect it exists for. Never enable
 * outside tests.
 */
enum class HotPathMutation : u8
{
    None = 0,
    /** Shootdowns no longer clear the per-core last-translation cache,
     *  so the fast path serves accesses from a stale mapping. */
    StaleLtc,
    /** Walk misses refill only the L1 TLB, never the unified L2. */
    SkipL2Fill,
};

/**
 * Thrown out of System::run() when the cooperative cancel flag
 * (SystemConfig::cancel) is observed set. The run's partial state is
 * discarded by the thrower's caller; the message records how far the
 * run got.
 */
class CancelledError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Which promotion policy drives the run. */
enum class PolicyKind : u8
{
    Base = 0,    //!< 4KB pages only (baseline)
    AllHuge,     //!< everything huge at fault time (ideal)
    LinuxThp,    //!< greedy fault-time THP + khugepaged
    HawkEye,     //!< software access-coverage scanning
    Pcc,         //!< the paper's hardware-assisted policy
    TraceReplay, //!< replay a recorded promotion trace (Sec. 4)
};

std::string to_string(PolicyKind kind);

/**
 * Inverse of to_string(PolicyKind): accepts the canonical names
 * ("base-4k", "all-huge", "linux-thp", "hawkeye", "pcc",
 * "trace-replay") plus short aliases ("base", "thp", "huge").
 * Returns nullopt for anything else so callers can report the typo.
 */
std::optional<PolicyKind> parsePolicyKind(std::string_view name);

/** Cycle costs the System charges beyond the OS event costs. */
struct TimingParams
{
    Cycles op_cost = 1;      //!< non-memory work per simulated access
    Cycles l2_tlb_hit = 7;   //!< extra latency of an L2 TLB hit
    Cycles walk_base = 30;   //!< walker state-machine overhead per walk

    /**
     * Latency of one page-table memory reference. For the irregular,
     * large-footprint workloads the paper targets, leaf PTE fetches
     * overwhelmingly miss the cache hierarchy (the page table of a
     * multi-GB footprint rivals the LLC), so the default approximates
     * a DRAM-bound fetch. With a PWC hit rate of ~80-90% a walk costs
     * walk_base + (1.1-1.4) x walk_ref cycles — the "hundreds of
     * cycles" of Sec. 3.2.1.
     */
    Cycles walk_ref = 150;

    /**
     * Route page-table fetches through the simulated data caches at
     * synthetic PT addresses instead of charging walk_ref. Only
     * meaningful at the `paper` scale, where PT size : LLC size
     * matches reality; at reduced scale the shrunken page table would
     * be unrealistically cache-resident.
     */
    bool pt_through_dcache = false;
};

struct SystemConfig
{
    u32 num_cores = 1;
    tlb::TlbGeometry tlb = tlb::TlbGeometry::scaled(128);
    pcc::PccUnitConfig pcc{};
    pt::PwcParams pwc{};
    cache::CacheHierarchy::Config cache{};
    TimingParams timing{};
    os::OsCosts costs{};

    /** Simulated physical memory; 0 = auto (headroom x footprint). */
    u64 phys_bytes = 0;
    double phys_headroom = 1.25;

    /** Fraction of 2MB blocks pinned by the fragmentation injector. */
    double frag_fraction = 0.0;

    /** Deterministic fault injection (off by default). */
    FaultConfig faults{};

    /**
     * OS graceful-degradation knobs (forwarded to os::Os::Params).
     * Exposed here so fault-injection campaigns can ablate the
     * machinery itself: retries = 0 and reclaim off reverts the OS to
     * fail-fast behavior.
     */
    u32 promote_retries = 2;
    bool reclaim_on_pressure = true;

    /**
     * Sweep the cross-layer invariants (sim/invariants.hpp) after every
     * policy interval and once at run end. O(pages) per sweep, so meant
     * for tests and fault-injection campaigns, not timing runs.
     */
    bool check_invariants = false;

    /**
     * Per-core last-translation fast path: consecutive accesses to the
     * same page skip the TLB set scan (the translation is L1-resident
     * and MRU by construction) while still being accounted as L1 hits.
     * Never changes results — kept as a knob so tests can prove that.
     */
    bool last_translation_cache = true;

    /** Promotion budget as % of total footprint; < 0 = unlimited. */
    double promotion_cap_percent = -1.0;

    /** Promotion interval in per-core simulated accesses (the paper's
     *  30-second cadence, calibrated by access rate — Sec. 4). */
    u64 interval_accesses = 1'000'000;

    PolicyKind policy = PolicyKind::Base;

    /**
     * Registry policy selector (`key` or `key:params`, e.g.
     * "trident:ratio1g=32"). When non-empty it overrides `policy`: the
     * System resolves it through os::PolicyRegistry. Bare legacy keys
     * are canonicalized back onto the enum by applyPolicySelector(),
     * so this field stays empty — and every spec key, memo entry, and
     * baseline unchanged — for the six built-in policies.
     */
    std::string policy_str;

    /**
     * Translation-hardware backend selector, resolved through
     * tlb::HwRegistry and applied to this config before the cores are
     * built. Empty (and the registered "default" key) = identity.
     */
    std::string hw;

    os::PccPolicy::Params pcc_policy{};
    os::HawkEyePolicy::Params hawkeye{};
    os::LinuxThpPolicy::Params linux_thp{};

    /** Input trace for PolicyKind::TraceReplay. */
    os::PromotionTrace replay_trace{};

    /** Record every promotion into System::recordedTrace(). */
    bool record_trace = false;

    /**
     * Invoked for each process right after its workload's setup():
     * the place to apply madvise() hints (Sec. 5.4.2 static HUB
     * identification) before execution begins.
     */
    std::function<void(os::Process &, u32 /*job*/)> process_setup;

    /** Per-process heap capacity (bookkeeping arrays only). */
    u64 heap_capacity = 8ull << 30;

    u64 seed = 1;

    /**
     * Telemetry collection (off by default — the hot path then pays
     * only a null-pointer test at rare events). When enabled the run
     * attaches a TelemetryReport to RunResult: per-interval series,
     * the structured event trace, and final counter values.
     */
    telemetry::TelemetryConfig telemetry{};

    /**
     * Differential oracle (off by default): run the simple reference
     * translation model in lockstep with the optimized hot path and
     * throw OracleError at the first divergence. Result-neutral — a
     * run with the oracle on produces the identical RunResult (or
     * throws), which is why specKey() ignores it.
     */
    OracleConfig oracle{};

    /** Test-only planted hot-path bug (see HotPathMutation). */
    HotPathMutation mutation = HotPathMutation::None;

    /**
     * Scheduling engine selection. The batch engine consumes address
     * batches emitted by Workload::batchLane() in a tight loop; the
     * scalar engine pulls one AccessOp per coroutine resume through
     * the Workload::lane() adapter. Both produce bit-identical
     * RunResults (the engine-equivalence tests prove it); the scalar
     * engine is kept as the differential reference, not a fast path.
     */
    bool batch_engine = true;

    /**
     * Ops per batch-buffer refill for single-lane jobs. Multi-lane
     * runs clamp the buffer to the scheduling quantum so production
     * bursts stay aligned with lane turns (host-side shared workload
     * state must interleave exactly as the scalar engine would).
     */
    u32 batch_capacity = 4096;

    /**
     * SMARTS-style sampled simulation (Sec. "sampled simulation" of
     * the evaluation methodology): alternate detailed windows of
     * `window` accesses with fast-forward phases of `fastforward`
     * accesses. Fast-forwarded accesses update page tables, access
     * bits, and PCC candidate counters only — TLBs, data caches, and
     * the walker are not touched, so TLB metrics in JobResult come
     * from detailed windows alone and RunResult::sampling reports
     * their per-window point estimates with confidence intervals.
     * Requires the batch engine; incompatible with the oracle (the
     * reference TLB model would desynchronize across skipped phases).
     */
    struct SamplingConfig
    {
        u64 window = 0;      //!< W: detailed accesses per window
        u64 fastforward = 0; //!< F: fast-forwarded accesses between

        bool
        enabled() const
        {
            return window > 0;
        }
    };
    SamplingConfig sampling{};

    /**
     * Multi-tenant node mode (tenant/tenant.hpp): when
     * tenant.enabled(), the N jobs of a run are tenants time-sharing
     * `tenant.cores` cores under the contention scheduler instead of
     * each owning a core. Tenant i runs as pid i with its pid doubling
     * as the TLB ASID (switch_mode selects ASID tagging vs the
     * flush-on-switch baseline). Requires the batch engine;
     * incompatible with sampling and the oracle (both reason about one
     * uninterrupted stream per core).
     */
    tenant::TenantConfig tenant{};

    /**
     * Cooperative supervision hooks for external watchdogs (runtime
     * wiring, never part of a spec's identity). `progress`, when set,
     * receives the running total of simulated accesses after every
     * scheduler batch; `cancel`, when set and observed true, makes
     * run() throw CancelledError at the next batch boundary. A lane
     * generator that blocks without yielding ops cannot be cancelled —
     * the flag is only polled between batches.
     */
    std::atomic<u64> *progress = nullptr;
    const std::atomic<bool> *cancel = nullptr;

    /**
     * Sanity-check the configuration: TLB/cache geometries that the
     * set-index math can address, sane caps and intervals. Called at
     * the top of System::run(), which fatals on a non-OK status;
     * harnesses can call it earlier for a friendlier diagnostic.
     */
    util::Status validate() const;

    /** Hardware profile matched to a workload scale. */
    static SystemConfig
    forScale(workloads::Scale scale)
    {
        SystemConfig cfg;
        // The data caches shrink with the TLB so the paper's ratios
        // survive at reduced scale. The governing ratio is
        // LLC : footprint (~1:500 on the evaluation machine — 20MB LLC
        // vs 10-38GB inputs): random accesses and leaf-PTE fetches
        // must miss the LLC for translation overheads to matter.
        switch (scale) {
          case workloads::Scale::Ci:
            cfg.tlb = tlb::TlbGeometry::scaled(16);
            cfg.cache.l1 = {4 * 1024, 8, 64};
            cfg.cache.l2 = {8 * 1024, 8, 64};
            cfg.cache.llc = {16 * 1024, 16, 64};
            cfg.interval_accesses = 100'000;
            break;
          case workloads::Scale::Small:
            cfg.tlb = tlb::TlbGeometry::scaled(128);
            cfg.cache.l1 = {8 * 1024, 8, 64};
            cfg.cache.l2 = {16 * 1024, 8, 64};
            cfg.cache.llc = {64 * 1024, 16, 64};
            cfg.interval_accesses = 2'000'000;
            break;
          case workloads::Scale::Medium:
            cfg.tlb = tlb::TlbGeometry::scaled(256);
            cfg.cache.l1 = {16 * 1024, 8, 64};
            cfg.cache.l2 = {32 * 1024, 8, 64};
            cfg.cache.llc = {256 * 1024, 16, 64};
            cfg.interval_accesses = 8'000'000;
            break;
          case workloads::Scale::Paper:
            cfg.tlb = tlb::TlbGeometry::haswell();
            cfg.timing.pt_through_dcache = true;
            cfg.cache.l1 = {32 * 1024, 8, 64};
            cfg.cache.l2 = {256 * 1024, 8, 64};
            cfg.cache.llc = {20 * 1024 * 1024, 16, 64};
            cfg.interval_accesses = 32'000'000;
            break;
        }
        return cfg;
    }
};

/**
 * Point a config at the policy a selector names. Bare legacy keys
 * ("pcc", "thp", ...) canonicalize onto the PolicyKind enum with
 * policy_str left empty — bit-identical spec keys and results — while
 * parameterized or registry-only selectors land in policy_str. Unknown
 * keys and malformed params return an error with a nearest-key
 * suggestion.
 */
util::Status applyPolicySelector(SystemConfig &cfg,
                                 std::string_view selector);

/** Display name of the config's policy (selector or enum name). */
std::string policyNameOf(const SystemConfig &cfg);

/** Human-readable listing of registered policies (--policy=list). */
std::string policyListText();

/** Human-readable listing of registered hw backends (--hw=list). */
std::string hwListText();

} // namespace pccsim::sim
