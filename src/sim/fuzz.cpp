#include "sim/fuzz.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "sim/runner.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace pccsim::sim {

namespace {

constexpr const char *kVersion = "fz1";

/** Shortest decimal form that parses back to exactly `v`. */
std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", v);
    if (std::strtod(buf, nullptr) == v)
        return buf;
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

bool
parseU64(const std::string &text, u64 &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(text.c_str(), &end, 10);
    return end == text.c_str() + text.size();
}

bool
parseDouble(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(text.c_str(), &end);
    return end == text.c_str() + text.size();
}

} // namespace

std::string
FuzzSpec::toString() const
{
    std::ostringstream os;
    os << kVersion << " pat=" << pattern << " fp=" << footprint_mb
       << " ops=" << ops << " hot=" << hot_regions << " seed=" << seed
       << " lanes=" << lanes << " pol=" << static_cast<int>(policy)
       << " cap=" << fmtDouble(cap_percent)
       << " frag=" << fmtDouble(frag_fraction) << " tel=" << telemetry
       << " inv=" << check_invariants << " iv=" << interval_accesses
       << " afh=" << fmtDouble(alloc_fail_huge)
       << " cfail=" << fmtDouble(compaction_fail)
       << " storm=" << fmtDouble(shootdown_storm)
       << " shock=" << shock_period
       << " mut=" << static_cast<int>(mutation);
    return os.str();
}

std::optional<FuzzSpec>
FuzzSpec::parse(const std::string &text)
{
    std::istringstream is(text);
    std::string token;
    if (!(is >> token) || token != kVersion)
        return std::nullopt;
    FuzzSpec spec;
    while (is >> token) {
        const auto eq = token.find('=');
        if (eq == std::string::npos)
            return std::nullopt;
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        u64 u = 0;
        bool ok = true;
        if (key == "pat") {
            spec.pattern = value;
        } else if (key == "fp") {
            ok = parseU64(value, spec.footprint_mb);
        } else if (key == "ops") {
            ok = parseU64(value, spec.ops);
        } else if (key == "hot") {
            ok = parseU64(value, spec.hot_regions);
        } else if (key == "seed") {
            ok = parseU64(value, spec.seed);
        } else if (key == "lanes") {
            ok = parseU64(value, u);
            spec.lanes = static_cast<u32>(u);
        } else if (key == "pol") {
            ok = parseU64(value, u) &&
                 u <= static_cast<u64>(PolicyKind::TraceReplay);
            spec.policy = static_cast<PolicyKind>(u);
        } else if (key == "cap") {
            ok = parseDouble(value, spec.cap_percent);
        } else if (key == "frag") {
            ok = parseDouble(value, spec.frag_fraction);
        } else if (key == "tel") {
            ok = parseU64(value, u) && u <= 1;
            spec.telemetry = u != 0;
        } else if (key == "inv") {
            ok = parseU64(value, u) && u <= 1;
            spec.check_invariants = u != 0;
        } else if (key == "iv") {
            ok = parseU64(value, spec.interval_accesses);
        } else if (key == "afh") {
            ok = parseDouble(value, spec.alloc_fail_huge);
        } else if (key == "cfail") {
            ok = parseDouble(value, spec.compaction_fail);
        } else if (key == "storm") {
            ok = parseDouble(value, spec.shootdown_storm);
        } else if (key == "shock") {
            ok = parseU64(value, spec.shock_period);
        } else if (key == "mut") {
            ok = parseU64(value, u) &&
                 u <= static_cast<u64>(HotPathMutation::SkipL2Fill);
            spec.mutation = static_cast<HotPathMutation>(u);
        } else {
            return std::nullopt; // unknown key: wrong/newer format
        }
        if (!ok)
            return std::nullopt;
    }
    if (spec.pattern != "uniform" && spec.pattern != "zipf" &&
        spec.pattern != "seq" && spec.pattern != "hot" &&
        spec.pattern != "spin") {
        return std::nullopt;
    }
    if (spec.footprint_mb == 0 || spec.lanes == 0)
        return std::nullopt;
    return spec;
}

ExperimentSpec
FuzzSpec::toExperiment() const
{
    ExperimentSpec ex;
    // The hot-region pattern needs at least one whole 2MB region per
    // lane; clamp the footprint up so every representable FuzzSpec
    // maps to a runnable experiment (random and shrunk specs alike).
    u64 fp = footprint_mb;
    if (pattern == "hot")
        fp = std::max<u64>(fp, 2ull * lanes);
    std::ostringstream name;
    name << "syn:" << pattern << ':' << fp << ':' << ops << ':'
         << (hot_regions == 0 ? 1 : hot_regions);
    ex.workload.name = name.str();
    ex.workload.seed = seed;
    ex.lanes = lanes;
    ex.policy = policy;
    ex.cap_percent = cap_percent;
    ex.frag_fraction = frag_fraction;
    ex.telemetry.enabled = telemetry;
    ex.check_invariants = check_invariants;
    ex.interval_accesses = interval_accesses;
    ex.faults.alloc_fail_huge = alloc_fail_huge;
    ex.faults.compaction_fail = compaction_fail;
    ex.faults.shootdown_storm = shootdown_storm;
    if (shock_period > 0)
        ex.faults.shock_intervals = {shock_period, shock_period * 2};
    ex.mutation = mutation;
    return ex;
}

bool
FuzzSpec::operator==(const FuzzSpec &other) const
{
    return toString() == other.toString();
}

FuzzSpec
randomSpec(u64 campaign_seed, u64 iteration)
{
    u64 sm = campaign_seed ^ (iteration * 0x9e3779b97f4a7c15ull);
    Rng rng(splitmix64(sm));
    FuzzSpec spec;
    static const char *kPatterns[] = {"uniform", "zipf", "seq", "hot"};
    spec.pattern = kPatterns[rng.below(4)];
    spec.footprint_mb = 4ull << rng.below(3); // 4, 8, 16 MB
    spec.ops = 20'000 * rng.range(1, 5);
    spec.hot_regions = rng.range(1, 6);
    spec.seed = rng.next() | 1;
    spec.lanes = 1u << rng.below(3); // 1, 2, 4
    static const PolicyKind kPolicies[] = {
        PolicyKind::Base, PolicyKind::AllHuge, PolicyKind::LinuxThp,
        PolicyKind::HawkEye, PolicyKind::Pcc};
    spec.policy = kPolicies[rng.below(5)];
    spec.cap_percent = rng.chance(0.3) ? 25.0 : -1.0;
    spec.frag_fraction = rng.chance(0.3) ? 0.3 : 0.0;
    spec.telemetry = rng.chance(0.3);
    spec.check_invariants = rng.chance(0.25);
    spec.interval_accesses = rng.chance(0.3) ? 20'000 : 0;
    if (rng.chance(0.35))
        spec.alloc_fail_huge = 0.2;
    if (rng.chance(0.25))
        spec.compaction_fail = 0.2;
    if (rng.chance(0.25))
        spec.shootdown_storm = 0.05;
    if (rng.chance(0.25))
        spec.shock_period = 4;
    return spec;
}

std::optional<FuzzFailure>
checkSpec(const FuzzSpec &spec, u32 jobs)
{
    // Gate 1: run under the differential oracle in full lockstep (the
    // fuzzer always pays for per-access compares, release build or
    // not — sampling is for production oracle runs).
    RunResult checked;
    try {
        ExperimentSpec ex = spec.toExperiment();
        ex.oracle.enabled = true;
        ex.oracle.sample_every = 1;
        checked = runOne(ex);
    } catch (const OracleError &e) {
        return FuzzFailure{spec, "oracle", e.what()};
    } catch (const std::exception &e) {
        return FuzzFailure{spec, "error", e.what()};
    }

    // Gate 2: the oracle must be result-neutral.
    try {
        const RunResult plain = runOne(spec.toExperiment());
        if (!(plain == checked)) {
            return FuzzFailure{
                spec, "neutrality",
                "oracle-on and oracle-off results differ"};
        }
    } catch (const std::exception &e) {
        return FuzzFailure{spec, "error", e.what()};
    }

    // Gate 3: serial vs parallel determinism over seed variants (the
    // variants make the batch large enough to actually overlap).
    try {
        std::vector<ExperimentSpec> batch;
        for (u64 v = 0; v < 4; ++v) {
            FuzzSpec variant = spec;
            variant.seed = spec.seed + v;
            batch.push_back(variant.toExperiment());
        }
        Runner serial(1);
        Runner pooled(jobs < 2 ? 2 : jobs);
        const auto a = serial.runMany(batch);
        const auto b = pooled.runMany(batch);
        for (size_t i = 0; i < batch.size(); ++i) {
            if (!(*a[i] == *b[i])) {
                return FuzzFailure{
                    spec, "parallel",
                    "serial and parallel results differ at batch index " +
                        std::to_string(i) + " (seed " +
                        std::to_string(spec.seed + i) + ")"};
            }
        }
    } catch (const std::exception &e) {
        return FuzzFailure{spec, "error", e.what()};
    }
    return std::nullopt;
}

namespace {

std::vector<FuzzSpec>
shrinkCandidates(const FuzzSpec &s)
{
    std::vector<FuzzSpec> out;
    const auto add = [&](FuzzSpec c) { out.push_back(std::move(c)); };
    if (s.ops > 1'000) {
        FuzzSpec c = s;
        c.ops /= 2;
        add(c);
    }
    if (s.footprint_mb > 1) {
        FuzzSpec c = s;
        c.footprint_mb /= 2;
        add(c);
    }
    if (s.hot_regions > 1) {
        FuzzSpec c = s;
        c.hot_regions /= 2;
        add(c);
    }
    if (s.lanes > 1) {
        FuzzSpec c = s;
        c.lanes = 1;
        add(c);
    }
    if (s.telemetry) {
        FuzzSpec c = s;
        c.telemetry = false;
        add(c);
    }
    if (s.check_invariants) {
        FuzzSpec c = s;
        c.check_invariants = false;
        add(c);
    }
    if (s.interval_accesses != 0) {
        FuzzSpec c = s;
        c.interval_accesses = 0;
        add(c);
    }
    if (s.alloc_fail_huge != 0.0) {
        FuzzSpec c = s;
        c.alloc_fail_huge = 0.0;
        add(c);
    }
    if (s.compaction_fail != 0.0) {
        FuzzSpec c = s;
        c.compaction_fail = 0.0;
        add(c);
    }
    if (s.shootdown_storm != 0.0) {
        FuzzSpec c = s;
        c.shootdown_storm = 0.0;
        add(c);
    }
    if (s.shock_period != 0) {
        FuzzSpec c = s;
        c.shock_period = 0;
        add(c);
    }
    if (s.cap_percent >= 0.0) {
        FuzzSpec c = s;
        c.cap_percent = -1.0;
        add(c);
    }
    if (s.frag_fraction != 0.0) {
        FuzzSpec c = s;
        c.frag_fraction = 0.0;
        add(c);
    }
    if (s.pattern != "seq") {
        FuzzSpec c = s;
        c.pattern = "seq";
        add(c);
    }
    if (s.policy != PolicyKind::Base) {
        FuzzSpec c = s;
        c.policy = PolicyKind::Base;
        add(c);
    }
    return out;
}

} // namespace

FuzzSpec
shrink(const FuzzSpec &failing, u32 jobs)
{
    const auto original = checkSpec(failing, jobs);
    if (!original)
        return failing; // does not actually fail; nothing to shrink
    const std::string kind = original->kind;

    FuzzSpec current = failing;
    // Greedy descent to a fixpoint: accept the first candidate that
    // still fails with the same kind, then restart the candidate list
    // from the smaller spec. Bounded for safety; every acceptance
    // strictly simplifies, so real campaigns converge long before it.
    for (int round = 0; round < 256; ++round) {
        bool changed = false;
        for (const FuzzSpec &candidate : shrinkCandidates(current)) {
            const auto failure = checkSpec(candidate, jobs);
            if (failure && failure->kind == kind) {
                current = candidate;
                changed = true;
                break;
            }
        }
        if (!changed)
            break;
    }
    return current;
}

FuzzCampaign
runCampaign(u64 campaign_seed, u64 iterations, u32 jobs,
            bool shrink_failures)
{
    FuzzCampaign out;
    for (u64 i = 0; i < iterations; ++i) {
        const FuzzSpec spec = randomSpec(campaign_seed, i);
        ++out.iterations;
        auto failure = checkSpec(spec, jobs);
        if (!failure)
            continue;
        warn("fuzz: iteration ", i, " failed (", failure->kind, "): ",
             failure->detail);
        if (shrink_failures) {
            const FuzzSpec small = shrink(spec, jobs);
            if (auto shrunk = checkSpec(small, jobs)) {
                failure = shrunk; // report the minimal repro instead
            }
        }
        out.failures.push_back(std::move(*failure));
    }
    return out;
}

} // namespace pccsim::sim
