#include "sim/system.hpp"

#include <algorithm>
#include <cmath>

#include "os/policy_registry.hpp"
#include "sim/invariants.hpp"
#include "tlb/hw_registry.hpp"
#include "util/host_profile.hpp"
#include "util/log.hpp"

namespace pccsim::sim {

std::string
to_string(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Base: return "base-4k";
      case PolicyKind::AllHuge: return "all-huge";
      case PolicyKind::LinuxThp: return "linux-thp";
      case PolicyKind::HawkEye: return "hawkeye";
      case PolicyKind::Pcc: return "pcc";
      case PolicyKind::TraceReplay: return "trace-replay";
    }
    return "?";
}

std::optional<PolicyKind>
parsePolicyKind(std::string_view name)
{
    // Compatibility shim: the accepted names and aliases now live in
    // the policy registry, keyed back onto the enum via legacy_kind.
    // Registry-only contenders (trident, ubpf, ...) have no enum value
    // and correctly fall out as nullopt here; select those through
    // applyPolicySelector().
    const os::PolicyRegistry::Entry *entry =
        os::PolicyRegistry::instance().find(name);
    if (entry && entry->legacy_kind >= 0)
        return static_cast<PolicyKind>(entry->legacy_kind);
    return std::nullopt;
}

util::Status
applyPolicySelector(SystemConfig &cfg, std::string_view selector)
{
    const os::PolicyRegistry &reg = os::PolicyRegistry::instance();
    const util::Selector sel = util::Selector::parse(selector);
    const os::PolicyRegistry::Entry *entry = reg.find(sel.key);
    if (!entry)
        return reg.unknownKeyError(sel.key);
    if (sel.params.empty() && entry->legacy_kind >= 0) {
        // Bare legacy keys canonicalize onto the enum: spec keys, memo
        // entries, and baselines stay bit-identical to pre-registry
        // builds.
        cfg.policy = static_cast<PolicyKind>(entry->legacy_kind);
        cfg.policy_str.clear();
        return {};
    }
    if (util::Status status = reg.validateSelector(selector);
        !status.ok())
        return status;
    cfg.policy_str = std::string(selector);
    return {};
}

std::string
policyNameOf(const SystemConfig &cfg)
{
    return cfg.policy_str.empty() ? to_string(cfg.policy)
                                  : cfg.policy_str;
}

namespace {

template <typename Entries>
std::string
listText(const Entries &entries)
{
    std::string out;
    for (const auto &entry : entries) {
        out += "  ";
        out += entry.key;
        const size_t pad =
            entry.key.size() < 14 ? 14 - entry.key.size() : 1;
        out.append(pad, ' ');
        out += entry.description;
        if (!entry.grammar.empty()) {
            out += "  [";
            out += entry.grammar;
            out += "]";
        }
        out += "\n";
    }
    return out;
}

} // namespace

std::string
policyListText()
{
    return listText(os::PolicyRegistry::instance().entries());
}

std::string
hwListText()
{
    return listText(tlb::HwRegistry::instance().entries());
}

namespace {

bool
isPow2(u64 x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/**
 * Lane scheduling quantum: ops one lane consumes before the scheduler
 * rotates to the next runnable lane. Multi-lane batch buffers are
 * clamped to this size so a lane's production burst covers exactly one
 * turn — the op interleaving (and thus every shared-state read a
 * workload makes) is identical to the scalar per-op engine.
 */
constexpr u32 kSchedQuantum = 64;

} // namespace

util::Status
SystemConfig::validate() const
{
    using util::Status;
    Status status;

    if (num_cores < 1)
        status.update(Status::error("num_cores must be >= 1"));

    // Registry selectors fail here — with a nearest-key suggestion —
    // instead of silently falling back to a default policy/hardware.
    if (!policy_str.empty()) {
        status.update(os::PolicyRegistry::instance().validateSelector(
            policy_str));
    }
    if (!hw.empty()) {
        status.update(
            tlb::HwRegistry::instance().validateSelector(hw));
    }

    const auto checkTlb = [&status](const char *label,
                                    const tlb::TlbParams &p) {
        if (p.ways == 0) {
            status.update(Status::error(label, ": zero-way TLB"));
            return;
        }
        if (p.entries == 0) {
            status.update(Status::error(label, ": zero entries"));
            return;
        }
        if (p.entries % p.ways != 0) {
            status.update(Status::error(
                label, ": entries (", p.entries,
                ") not a multiple of ways (", p.ways, ")"));
            return;
        }
        if (!isPow2(p.entries / p.ways)) {
            status.update(Status::error(
                label, ": non-power-of-two set count ",
                p.entries / p.ways));
        }
    };
    checkTlb("tlb.l1_4k", tlb.l1_4k);
    checkTlb("tlb.l1_2m", tlb.l1_2m);
    checkTlb("tlb.l1_1g", tlb.l1_1g);
    checkTlb("tlb.l2", tlb.l2);
    if (pwc.enabled) {
        checkTlb("pwc.pml4e", pwc.pml4e);
        checkTlb("pwc.pdpte", pwc.pdpte);
        checkTlb("pwc.pde", pwc.pde);
    }

    const auto checkCache = [&status](const char *label,
                                      const cache::CacheParams &p) {
        if (p.ways == 0) {
            status.update(Status::error(label, ": zero-way cache"));
            return;
        }
        if (!isPow2(p.line_bytes)) {
            status.update(Status::error(
                label, ": line size ", p.line_bytes,
                " not a power of two"));
            return;
        }
        const u64 way_bytes = static_cast<u64>(p.ways) * p.line_bytes;
        if (p.size_bytes == 0 || p.size_bytes % way_bytes != 0) {
            status.update(Status::error(
                label, ": size ", p.size_bytes,
                " not a multiple of ways x line (", way_bytes, ")"));
        }
        // Unlike the TLBs, non-power-of-two cache set counts are a
        // supported geometry (the model falls back to modulo
        // indexing): real LLC slices — e.g. the paper profile's
        // 20MB 16-way Haswell LLC — land on 20480 sets.
    };
    if (cache.enabled) {
        checkCache("cache.l1", cache.l1);
        checkCache("cache.l2", cache.l2);
        checkCache("cache.llc", cache.llc);
    }

    const auto checkPcc = [&status](const char *label,
                                    const pcc::PccConfig &p) {
        if (p.entries == 0)
            status.update(Status::error(label, ": zero entries"));
        if (p.counter_bits < 1 || p.counter_bits > 63) {
            status.update(Status::error(
                label, ": counter_bits ", p.counter_bits,
                " outside [1, 63]"));
        }
    };
    checkPcc("pcc.pcc2m", pcc.pcc2m);
    if (pcc.enable_1g)
        checkPcc("pcc.pcc1g", pcc.pcc1g);

    if (interval_accesses == 0)
        status.update(Status::error("interval_accesses must be >= 1"));
    if (sampling.enabled()) {
        if (sampling.fastforward == 0) {
            status.update(Status::error(
                "sampling.fastforward must be >= 1 when sampling"));
        }
        if (!batch_engine) {
            status.update(Status::error(
                "sampling requires the batch engine"));
        }
        if (oracle.enabled) {
            status.update(Status::error(
                "sampling is incompatible with the oracle (the "
                "reference model cannot skip fast-forward phases)"));
        }
    }
    if (batch_capacity == 0)
        status.update(Status::error("batch_capacity must be >= 1"));
    if (oracle.enabled && oracle.sample_every == 0)
        status.update(Status::error("oracle.sample_every must be >= 1"));
    if (promotion_cap_percent > 100.0) {
        status.update(Status::error(
            "promotion_cap_percent ", promotion_cap_percent,
            " exceeds 100"));
    }
    if (frag_fraction < 0.0 || frag_fraction > 1.0) {
        status.update(Status::error(
            "frag_fraction ", frag_fraction, " outside [0, 1]"));
    }
    if (phys_bytes == 0 && phys_headroom <= 0.0) {
        status.update(Status::error(
            "phys_headroom must be positive when phys_bytes is auto"));
    }
    if (heap_capacity < mem::kBytes2M) {
        status.update(Status::error(
            "heap_capacity ", heap_capacity, " below one 2MB region"));
    }
    if (telemetry.enabled && telemetry.top_k == 0)
        status.update(Status::error("telemetry.top_k must be >= 1"));
    if (telemetry.enabled && telemetry.attribution &&
        telemetry.attribution_regions == 0) {
        status.update(
            Status::error("telemetry.attribution_regions must be >= 1"));
    }
    if (telemetry.enabled && telemetry.audit &&
        telemetry.max_audit_records == 0) {
        status.update(
            Status::error("telemetry.max_audit_records must be >= 1"));
    }
    if (telemetry.enabled && telemetry.histograms &&
        telemetry.exemplar_k == 0) {
        status.update(Status::error(
            "telemetry.exemplar_k must be >= 1 when histograms are on"));
    }
    if (tenant.enabled()) {
        if (!batch_engine) {
            status.update(Status::error(
                "tenant mode requires the batch engine"));
        }
        if (sampling.enabled()) {
            status.update(Status::error(
                "tenant mode is incompatible with sampling"));
        }
        if (oracle.enabled) {
            status.update(Status::error(
                "tenant mode is incompatible with the oracle (the "
                "reference model has no ASID/switch notion)"));
        }
        if (tenant.cores > num_cores) {
            status.update(Status::error(
                "tenant.cores (", tenant.cores, ") exceeds num_cores (",
                num_cores, ")"));
        }
        if (tenant.quantum_ops == 0) {
            status.update(
                Status::error("tenant.quantum_ops must be >= 1"));
        }
    }

    return status;
}

System::System(SystemConfig config) : config_(std::move(config))
{
    // Config transforms must land before any core hardware is built:
    // the hw backend reshapes TLB/cache geometry, and a policy's
    // prepare hook may enable the 1GB PCC.
    if (!config_.hw.empty()) {
        if (util::Status status =
                tlb::HwRegistry::instance().apply(config_.hw, config_);
            !status.ok()) {
            fatal("hw backend '", config_.hw,
                  "': ", status.toString());
        }
    }
    if (!config_.policy_str.empty()) {
        if (util::Status status =
                os::PolicyRegistry::instance().prepare(
                    config_.policy_str, config_);
            !status.ok()) {
            fatal("policy '", config_.policy_str,
                  "': ", status.toString());
        }
    }
    PCCSIM_ASSERT(config_.num_cores >= 1);
    cores_.reserve(config_.num_cores);
    for (u32 c = 0; c < config_.num_cores; ++c)
        cores_.emplace_back(config_);
    core_process_.assign(config_.num_cores, nullptr);
    // Victim-buffer candidate source (Sec. 5.4.1 alternative). Only
    // wire the hook when that source is selected: observeL2Victim() is
    // a no-op otherwise, and an unset hook lets the TLB skip a
    // std::function call on every L2 displacement (a hot-path cost on
    // walk-heavy workloads).
    if (config_.pcc.source == pcc::CandidateSource::L2Victims) {
        for (auto &core : cores_) {
            core.tlb.setL2VictimHook(
                [&core](Vpn vpn, mem::PageSize size) {
                    core.pcc.observeL2Victim(vpn, size);
                });
        }
    }
}

System::~System() = default;

std::unique_ptr<os::Policy>
System::makePolicy()
{
    // Enum and selector both resolve through the registry; a bare
    // legacy key's factory builds from the config's policy params,
    // exactly what the old PolicyKind switch constructed.
    const std::string selector = config_.policy_str.empty()
                                     ? to_string(config_.policy)
                                     : config_.policy_str;
    util::Status status;
    std::unique_ptr<os::Policy> policy =
        os::PolicyRegistry::instance().make(selector, config_, status);
    if (!status.ok())
        fatal("policy '", selector, "': ", status.toString());
    PCCSIM_ASSERT(policy != nullptr);
    return policy;
}

os::Process &
System::processOnCore(CoreId core)
{
    PCCSIM_ASSERT(core < core_process_.size() && core_process_[core]);
    return *core_process_[core];
}

pcc::PccUnit &
System::pccUnit(CoreId core)
{
    return cores_.at(core).pcc;
}

void
System::chargeCore(CoreId core, Cycles cycles)
{
    cores_.at(core).cycles += cycles;
}

void
System::installShootdownHook()
{
    os_->setShootdownHook([this](Pid pid, Addr base, u64 bytes) -> Cycles {
        ++shootdowns_;
        // Under ASID switching the owner's entries are tagged with its
        // pid; the invalidation must target that tag or it would miss
        // them entirely. Flush mode (and legacy runs) tag everything 0.
        const Asid asid =
            (tsched_ &&
             config_.tenant.switch_mode == tenant::SwitchMode::Asid)
                ? static_cast<Asid>(pid)
                : 0;
        for (auto &core : cores_) {
            core.tlb.shootdown(base, bytes, asid);
            core.walker.shootdown(base, bytes);
            core.pcc.shootdown(base, bytes);
            // The mapping (size or frame) changed somewhere; drop the
            // last-translation fast path so the next access re-probes.
            if (config_.mutation != HotPathMutation::StaleLtc)
                core.last_page_bytes = 0;
        }
        if (oracle_)
            oracle_->onShootdown(base, bytes);
        // The IPI cost lands on every core running the owning process.
        // Per-4KB invalidations (migration) are batched by the kernel
        // and charged once per compaction, so only charge full
        // shootdowns (>= one region) here.
        if (bytes >= mem::kBytes2M) {
            Cycles cost = config_.costs.shootdown;
            // An injected shootdown storm: IPI delivery contends with
            // a burst of unrelated invalidations, inflating latency.
            if (injector_)
                cost += injector_->shootdownDelay();
            for (u32 c = 0; c < config_.num_cores; ++c) {
                if (core_process_[c] && core_process_[c]->pid() == pid)
                    cores_[c].cycles += cost;
            }
            // Trace only region-sized broadcasts: per-4KB migration
            // invalidations would flood the event log (they are batched
            // cost-wise for the same reason).
            if (tel_tracer_) {
                tel_tracer_->record(telemetry::EventKind::Shootdown,
                                    pid, base, bytes, cost);
            }
        }
        return 0;
    });
}

void
System::installFaultInjection()
{
    injector_.reset();
    if (!config_.faults.any())
        return;
    injector_ =
        std::make_unique<FaultInjector>(config_.faults, config_.seed);
    phys_->setAllocGate(
        [this](unsigned order) { return injector_->allowAlloc(order); });
    phys_->setCompactionGate(
        [this] { return injector_->compactionMovesAllowed(); });
}

void
System::installReclaimRanker()
{
    // Rank reclaim victims by the same hardware signal that ranks
    // promotions: page-walk frequency from the PCCs of every core
    // running the owner. Promoted 2MB regions were invalidated from
    // the 2MB PCC, but their walks (as 2MB-mapped pages) still feed
    // the 1GB PCC, so the containing gigabyte's frequency stands in
    // as the hotness estimate; a 2MB-PCC hit (post-demotion residue)
    // is an even stronger signal.
    os_->setReclaimRanker([this](Pid pid, Addr base) -> u64 {
        const Vpn v2m = mem::vpnOf(base, mem::PageSize::Huge2M);
        const Vpn v1g = mem::vpnOf(base, mem::PageSize::Huge1G);
        u64 score = 0;
        for (u32 c = 0; c < config_.num_cores; ++c) {
            // Tenant mode: the owner may be scheduled out right now,
            // but any shared core it ran on still holds its candidates
            // (addresses are globally disjoint, so no false matches).
            if (!tsched_ &&
                (!core_process_[c] || core_process_[c]->pid() != pid))
                continue;
            const auto &unit = cores_[c].pcc;
            if (auto f = unit.pcc2m().frequencyOf(v2m))
                score = std::max(score, *f * mem::kPagesPer2M);
            if (auto f = unit.pcc1g().frequencyOf(v1g))
                score = std::max(score, *f);
        }
        return score;
    });
}

void
System::setupTelemetry(size_t num_jobs)
{
    tel_registry_.reset();
    tel_sampler_.reset();
    tel_tracer_.reset();
    tel_profiler_.reset();
    tel_audit_.reset();
    for (auto &core : cores_)
        core.pcc.pcc2m().setEvictionHook({});
    tel_churn_ = telemetry::TopKChurnTracker{};
    tel_churn_counter_ = telemetry::Registry::Handle{};
    tel_tail_.reset();
    tel_tail_p50_ = telemetry::Registry::Handle{};
    tel_tail_p90_ = telemetry::Registry::Handle{};
    tel_tail_p99_ = telemetry::Registry::Handle{};
    tel_tail_p999_ = telemetry::Registry::Handle{};
    tel_tail_max_ = telemetry::Registry::Handle{};
    if (!config_.telemetry.enabled)
        return;

    tel_registry_ = std::make_unique<telemetry::Registry>();
    telemetry::Registry &reg = *tel_registry_;

    // Probes over state the simulator maintains anyway: registering
    // them costs the instrumented modules nothing, and reading happens
    // only at interval boundaries and run end.
    reg.probe("tlb_accesses", [this] {
        u64 sum = 0;
        for (const auto &core : cores_)
            sum += core.tlb.accesses();
        return sum;
    });
    reg.probe("l1_hits", [this] {
        u64 sum = 0;
        for (const auto &core : cores_)
            sum += core.tlb.l1Hits();
        return sum;
    });
    reg.probe("l2_hits", [this] {
        u64 sum = 0;
        for (const auto &core : cores_)
            sum += core.tlb.l2Hits();
        return sum;
    });
    reg.probe("walks", [this] {
        u64 sum = 0;
        for (const auto &core : cores_)
            sum += core.tlb.walks();
        return sum;
    });
    reg.probe("faults", [this] {
        u64 sum = 0;
        for (const auto &core : cores_)
            sum += core.faults;
        return sum;
    });
    reg.probe("pcc_occupancy", [this] {
        u64 sum = 0;
        for (const auto &core : cores_)
            sum += core.pcc.occupancy();
        return sum;
    });
    reg.probe("promotions",
              [this] { return os_->stats().get("promotions"); });
    reg.probe("promotions_1g",
              [this] { return os_->stats().get("promotions_1g"); });
    reg.probe("demotions",
              [this] { return os_->stats().get("demotions"); });
    reg.probe("reclaim_events",
              [this] { return os_->stats().get("reclaim_events"); });
    reg.probe("reclaimed_frames",
              [this] { return os_->stats().get("reclaimed_frames"); });
    reg.probe("compactions",
              [this] { return phys_->stats().get("compactions"); });
    reg.probe("shootdowns", [this] { return shootdowns_; });
    reg.probe("os_background_cycles",
              [this] { return os_->backgroundCycles(); });
    for (size_t j = 0; j < num_jobs; ++j) {
        reg.probe("job" + std::to_string(j) + "_cycles", [this, j] {
            Cycles wall = 0;
            for (const auto &lane : lanes_)
                if (lane.job == j)
                    wall = std::max(wall, cores_[lane.core].cycles);
            return wall;
        });
    }
    // Per-tenant fairness/starvation telemetry. Only registered for
    // genuinely multi-tenant runs: a 1-tenant tenant-mode run must
    // produce the byte-identical telemetry report of the legacy
    // single-process path.
    if (config_.tenant.enabled() && num_jobs > 1) {
        reg.probe("tenant_switches",
                  [this] { return tsched_ ? tsched_->switches() : 0; });
        for (size_t j = 0; j < num_jobs; ++j) {
            const std::string prefix = "tenant" + std::to_string(j);
            reg.probe(prefix + "_switches", [this, j] {
                return tsched_ ? tsched_->switchesOf(
                                     static_cast<TenantId>(j))
                               : 0;
            });
            reg.probe(prefix + "_ops", [this, j] {
                return tsched_
                           ? tsched_->opsOf(static_cast<TenantId>(j))
                           : 0;
            });
            reg.probe(prefix + "_walks",
                      [this, j] { return job_tally_[j].walks; });
            reg.probe(prefix + "_faults",
                      [this, j] { return job_tally_[j].faults; });
        }
    }
    tel_churn_counter_ = reg.counter("pcc_topk_churn");
    if (config_.telemetry.histograms) {
        tel_tail_ = std::make_unique<telemetry::TailRecorder>(
            config_.num_cores, static_cast<u32>(num_jobs),
            config_.telemetry.exemplar_k);
        // Windowed translation-latency quantiles: computed over the
        // just-closed interval window and published as gauges, so the
        // series read "p99 this interval", not "p99 so far".
        tel_tail_p50_ = reg.counter("tail_p50_cycles");
        tel_tail_p90_ = reg.counter("tail_p90_cycles");
        tel_tail_p99_ = reg.counter("tail_p99_cycles");
        tel_tail_p999_ = reg.counter("tail_p999_cycles");
        tel_tail_max_ = reg.counter("tail_max_cycles");
    }

    tel_sampler_ = std::make_unique<telemetry::IntervalSampler>(reg);
    using telemetry::SampleKind;
    for (const char *name :
         {"walks", "l1_hits", "l2_hits", "faults", "promotions",
          "demotions", "compactions", "reclaim_events", "shootdowns",
          "pcc_topk_churn"}) {
        tel_sampler_->track(name, SampleKind::Cumulative);
    }
    tel_sampler_->track("pcc_occupancy", SampleKind::Gauge);
    for (size_t j = 0; j < num_jobs; ++j) {
        tel_sampler_->track("job" + std::to_string(j) + "_cycles",
                            SampleKind::Gauge);
    }
    if (config_.tenant.enabled() && num_jobs > 1) {
        tel_sampler_->track("tenant_switches", SampleKind::Cumulative);
        for (size_t j = 0; j < num_jobs; ++j) {
            const std::string prefix = "tenant" + std::to_string(j);
            tel_sampler_->track(prefix + "_ops",
                                SampleKind::Cumulative);
            tel_sampler_->track(prefix + "_walks",
                                SampleKind::Cumulative);
        }
    }
    if (tel_tail_) {
        for (const char *name :
             {"tail_p50_cycles", "tail_p90_cycles", "tail_p99_cycles",
              "tail_p999_cycles", "tail_max_cycles"}) {
            tel_sampler_->track(name, SampleKind::Gauge);
        }
    }

    if (config_.telemetry.trace_events) {
        tel_tracer_ = std::make_unique<telemetry::EventTracer>(
            config_.telemetry.max_events);
        tel_tracer_->setClock([this] { return total_accesses_; });
        os_->setTracer(tel_tracer_.get());
        if (injector_)
            injector_->setTracer(tel_tracer_.get());
    }

    if (config_.telemetry.attribution) {
        tel_profiler_ = std::make_unique<telemetry::RegionProfiler>(
            config_.telemetry.attribution_regions);
        // PCC evictions flow through a per-cache hook so attribution
        // sees the victim region with the core's owning process.
        for (u32 c = 0; c < config_.num_cores; ++c) {
            cores_[c].pcc.pcc2m().setEvictionHook([this, c](Vpn region) {
                if (core_process_[c]) {
                    tel_profiler_->recordPccEviction(
                        core_process_[c]->pid(), region);
                }
            });
        }
    }
    if (config_.telemetry.audit) {
        tel_audit_ = std::make_unique<telemetry::PromotionAuditLog>(
            config_.telemetry.max_audit_records);
        tel_audit_->setClock([this] { return total_accesses_; });
        os_->setAuditLog(tel_audit_.get());
    }
}

void
System::sampleTelemetryInterval()
{
    // Merge the ranked heads of every core's PCC: the churn of that
    // union is how much of the system-wide candidate set turned over
    // this interval.
    std::vector<Vpn> merged;
    for (const auto &core : cores_) {
        auto top = core.pcc.topRegions(config_.telemetry.top_k);
        merged.insert(merged.end(), top.begin(), top.end());
    }
    tel_churn_counter_ += tel_churn_.update(std::move(merged));
    if (tel_tail_) {
        // Quantiles of the interval window just ending; the window
        // then resets so each sample is an independent slice of time.
        const telemetry::LatencyHistogram &window = tel_tail_->window();
        tel_tail_p50_.set(window.quantile(0.50));
        tel_tail_p90_.set(window.quantile(0.90));
        tel_tail_p99_.set(window.quantile(0.99));
        tel_tail_p999_.set(window.quantile(0.999));
        tel_tail_max_.set(window.maxValue());
        tel_tail_->resetWindow();
    }
    tel_sampler_->sample();
    if (tel_tracer_) {
        tel_tracer_->record(telemetry::EventKind::Interval, 0, 0, 0,
                            intervals_);
    }
}

void
System::runInvariantChecks()
{
    util::Status status =
        checkMemoryConsistency(*os_, *phys_);
    for (u32 c = 0; c < config_.num_cores; ++c) {
        if (!core_process_[c])
            continue;
        const os::Process &proc = *core_process_[c];
        status.update(checkTlbResidency(cores_[c].tlb, proc));
        status.update(checkPccResidency(cores_[c].pcc, proc));
    }
    ++invariant_checks_;
    if (!status.ok()) {
        ++invariant_failures_;
        if (first_invariant_failure_.empty()) {
            first_invariant_failure_ = status.toString();
            warn("invariant violation (interval ", intervals_,
                 "): ", first_invariant_failure_);
        }
    }
}

Cycles
System::chargeWalkRefs(CoreState &core, const os::Process &proc,
                       Addr vaddr, unsigned refs, mem::PageSize size)
{
    if (!config_.timing.pt_through_dcache) {
        return config_.timing.walk_base +
               static_cast<Cycles>(refs) * config_.timing.walk_ref;
    }
    // Synthetic, per-process page-table entry addresses: walks fetch
    // real cache lines, so PTE locality (8 entries/line) and PT cache
    // pressure emerge naturally instead of being a constant.
    const Addr pt_base = 0xFA00'0000'0000ull +
                         (static_cast<Addr>(proc.pid()) << 44);
    const Addr pte_addr =
        pt_base + mem::vpnOf(vaddr, mem::PageSize::Base4K) * 8;
    const Addr pmd_addr = pt_base + 0x0080'0000'0000ull +
                          mem::vpnOf(vaddr, mem::PageSize::Huge2M) * 8;
    const Addr pud_addr = pt_base + 0x00C0'0000'0000ull +
                          mem::vpnOf(vaddr, mem::PageSize::Huge1G) * 8;
    const Addr pgd_addr =
        pt_base + 0x00E0'0000'0000ull + (vaddr >> 39) * 8;

    // Deepest level first; a walk with P refs touches the P deepest
    // levels of its leaf depth.
    Addr levels[4];
    unsigned depth = 0;
    switch (size) {
      case mem::PageSize::Base4K:
        levels[depth++] = pte_addr;
        [[fallthrough]];
      case mem::PageSize::Huge2M:
        levels[depth++] = pmd_addr;
        [[fallthrough]];
      case mem::PageSize::Huge1G:
        levels[depth++] = pud_addr;
        levels[depth++] = pgd_addr;
        break;
    }

    Cycles cost = 0;
    const unsigned n = std::min(refs, depth);
    for (unsigned i = 0; i < n; ++i)
        cost += core.dcache.access(levels[i]);
    return cost;
}

// Ablation switches for profiling builds only (never defined in the
// shipped CMake config): carve one component out of the hot path so
// wall-clock deltas attribute cost where gprof's instrumentation bias
// cannot.
#ifdef PCCSIM_ABLATE_DCACHE
#define PCCSIM_DCACHE(core, addr) Cycles{0}
#else
#define PCCSIM_DCACHE(core, addr) (core).dcache.access(addr)
#endif

Cycles
System::doAccess(CoreState &core, os::Process &proc, Addr vaddr,
                 bool write)
{
    (void)write;
    Cycles cost = config_.timing.op_cost;
    ++core.accesses;
    // Keep liveness knowledge current even for huge-backed pages, whose
    // accesses never fault again — the pressure reclaimer must be able
    // to tell data from bloat.
    proc.noteTouched(vaddr);

    if (!proc.faulted(vaddr)) {
        const bool want_huge = policy_->wantHugeFault(proc, vaddr);
        const Cycles fault_cost =
            os_->handleFault(proc, vaddr, want_huge);
        cost += fault_cost;
        ++core.faults;
        // The fault handler's walk loaded the translation.
        const mem::PageSize filled = proc.mappingSizeOf(vaddr);
        core.tlb.fill(vaddr, filled);
        core.noteTranslated(vaddr, filled);
        if (oracle_) {
            oracle_->onFault(
                static_cast<u32>(&core - cores_.data()), proc.pid(),
                vaddr, filled);
        }
        cost += PCCSIM_DCACHE(core, vaddr);
        if (tel_tail_) {
            recordTail(core, proc, vaddr, telemetry::TailOutcome::Fault,
                       cost, 0, fault_cost);
        }
        return cost;
    }

    // Last-translation fast path: the page is still L1-resident and
    // MRU (any mapping change since would have shot it down), so skip
    // the mapping query and the TLB set scan but account the access
    // identically to the L1-hit path below.
    if (config_.last_translation_cache &&
        vaddr - core.last_page_base < core.last_page_bytes) {
        core.tlb.noteRepeatL1Hit();
        if (oracle_) {
            oracle_->onLtcAccess(
                static_cast<u32>(&core - cores_.data()), proc.pid(),
                vaddr);
        }
        cost += PCCSIM_DCACHE(core, vaddr);
        if (tel_tail_) {
            recordTail(core, proc, vaddr, telemetry::TailOutcome::L1,
                       cost, 0, 0);
        }
        return cost;
    }

    const mem::PageSize size = proc.mappingSizeOf(vaddr);
    const tlb::HitLevel level = core.tlb.access(vaddr, size);
    Cycles walk_cost = 0;
    if (level == tlb::HitLevel::L2) {
        cost += config_.timing.l2_tlb_hit;
    } else if (level == tlb::HitLevel::Miss) {
        const auto walk = core.walker.walk(proc.pageTable(), vaddr);
        PCCSIM_DCHECK(walk.present, "walk missed a faulted page");
        walk_cost = chargeWalkRefs(
            core, proc, vaddr, walk.memory_refs, walk.size);
        cost += walk_cost;
        core.walk_cycles += walk_cost;
        if (config_.mutation == HotPathMutation::SkipL2Fill)
            core.tlb.l1Of(size).access(mem::vpnOf(vaddr, size));
        else
            core.tlb.fill(vaddr, size);
        if (tel_profiler_ || tel_audit_) {
            // Attribute the walk before observeWalk mutates the PCC:
            // pcc_hit must reflect whether the region was tracked when
            // the walk retired, not after this walk's own touch.
            const Vpn v2m = mem::vpnOf(vaddr, mem::PageSize::Huge2M);
            const u32 depth = walk.size == mem::PageSize::Base4K ? 4
                              : walk.size == mem::PageSize::Huge2M ? 3
                                                                   : 2;
            const u32 pwc_hits =
                depth - std::min(depth, walk.memory_refs);
            if (tel_profiler_) {
                const bool pcc_hit =
                    core.pcc.pcc2m().frequencyOf(v2m).has_value();
                tel_profiler_->recordWalk(proc.pid(), v2m, walk_cost,
                                          pwc_hits, pcc_hit);
            }
            if (tel_audit_)
                tel_audit_->chargeWalk(proc.pid(), v2m, walk_cost);
        }
        core.pcc.observeWalk(vaddr, walk);
    }
    if (oracle_) {
        oracle_->onAccess(static_cast<u32>(&core - cores_.data()),
                          proc.pid(), vaddr, size, level);
    }
    core.noteTranslated(vaddr, size);
    cost += PCCSIM_DCACHE(core, vaddr);
    if (tel_tail_) {
        const telemetry::TailOutcome outcome =
            level == tlb::HitLevel::Miss ? telemetry::TailOutcome::Walk
            : level == tlb::HitLevel::L2 ? telemetry::TailOutcome::L2
                                         : telemetry::TailOutcome::L1;
        recordTail(core, proc, vaddr, outcome, cost, walk_cost, 0);
    }
    return cost;
}

void
System::recordTail(const CoreState &core, const os::Process &proc,
                   Addr vaddr, telemetry::TailOutcome outcome,
                   Cycles cost, Cycles walk_cost, Cycles stall_cost)
{
    tel_tail_->record(static_cast<u32>(&core - cores_.data()), core.job,
                      proc.pid(), total_accesses_,
                      mem::pageBase(vaddr, mem::PageSize::Huge2M),
                      outcome, cost, walk_cost, stall_cost, shootdowns_,
                      core.faults);
}

void
System::maybeReleaseBarrier(u32 job)
{
    bool all_parked = true;
    for (const auto &lane : lanes_) {
        if (lane.job == job && !lane.done && !lane.at_barrier) {
            all_parked = false;
            break;
        }
    }
    if (!all_parked)
        return;

    // Barrier wait: every core of the job advances to the job maximum.
    Cycles max_cycles = 0;
    for (const auto &lane : lanes_)
        if (lane.job == job)
            max_cycles = std::max(max_cycles, cores_[lane.core].cycles);
    for (auto &lane : lanes_) {
        if (lane.job == job) {
            cores_[lane.core].cycles = max_cycles;
            lane.at_barrier = false;
        }
    }
}

void
System::tenantClaim(const LaneState &lane)
{
    os::Process *proc = job_process_[lane.job];
    if (!tsched_->claim(lane.core, lane.job))
        return; // tenant already current: no switch, no cost

    CoreState &core = cores_[lane.core];
    // Charged identically in both switch modes, so a flush-vs-ASID
    // comparison isolates the refill misses — the quantity Fig. 10
    // reports — rather than folding in direct switch overhead.
    core.cycles += config_.costs.context_switch;
    if (config_.tenant.switch_mode == tenant::SwitchMode::Flush) {
        // Non-PCID CR3 write: the whole TLB hierarchy and the page-walk
        // caches are lost (the paper's multiprogrammed baseline).
        core.tlb.flushAll();
        core.walker.flushAll();
    } else {
        // PCID hardware: entries of both tenants coexist, tagged; the
        // switch just retags subsequent lookups and fills.
        core.tlb.setCurrentAsid(static_cast<Asid>(proc->pid()));
    }
    // The last-translation cache holds the *departing* tenant's page:
    // never valid for the incoming tenant (disjoint address spaces),
    // and possibly evicted from L1 by the time the owner returns.
    core.last_page_bytes = 0;
    core_process_[lane.core] = proc;
    core.pid = proc->pid();
    core.job = lane.job;
}

void
System::onInterval(u32 total_lanes)
{
    ++intervals_;
    next_interval_at_ +=
        config_.interval_accesses * std::max<u32>(1, total_lanes);
    if (injector_ && injector_->shockDue(intervals_))
        shock_pins_ += injector_->applyShock(*phys_);
    policy_->onInterval(*this);
    if (config_.check_invariants)
        runInvariantChecks();
    // Sample after the policy acted so this interval's promotions land
    // in this interval's row; series length therefore equals
    // RunResult::intervals.
    if (tel_sampler_)
        sampleTelemetryInterval();
}

void
System::runScalarLoop(std::vector<Cycles> &job_wall,
                      std::vector<u32> &job_live, u32 total_lanes)
{
    u32 live = static_cast<u32>(lanes_.size());
    while (live > 0) {
        bool progressed = false;
        for (auto &lane : lanes_) {
            if (lane.done || lane.at_barrier)
                continue;
            progressed = true;
            CoreState &core = cores_[lane.core];
            os::Process &proc = *core_process_[lane.core];
            for (u32 b = 0; b < kSchedQuantum; ++b) {
                if (!lane.scalar_gen.next()) {
                    lane.done = true;
                    --live;
                    --job_live[lane.job];
                    if (job_live[lane.job] == 0) {
                        Cycles wall = 0;
                        for (const auto &l2 : lanes_)
                            if (l2.job == lane.job)
                                wall = std::max(wall,
                                                cores_[l2.core].cycles);
                        job_wall[lane.job] = wall;
                    }
                    maybeReleaseBarrier(lane.job);
                    break;
                }
                const auto &op = lane.scalar_gen.value();
                if (op.kind == workloads::OpKind::Barrier) {
                    lane.at_barrier = true;
                    maybeReleaseBarrier(lane.job);
                    break;
                }
                core.cycles += doAccess(
                    core, proc, op.addr,
                    op.kind == workloads::OpKind::Store);
                ++total_accesses_;
                if (total_accesses_ >= next_interval_at_)
                    onInterval(total_lanes);
            }
            // Cooperative supervision: publish progress and honor a
            // pending cancel once per lane turn (~kSchedQuantum
            // accesses) — cheap enough to leave unconditionally.
            if (config_.progress) {
                config_.progress->store(total_accesses_,
                                        std::memory_order_relaxed);
            }
            if (config_.cancel &&
                config_.cancel->load(std::memory_order_relaxed)) {
                throw CancelledError(
                    "run cancelled after " +
                    std::to_string(total_accesses_) + " accesses");
            }
        }
        PCCSIM_ASSERT(progressed || live == 0,
                      "scheduler deadlock: all live lanes parked");
    }
}

// Flatten the whole consuming path (doAccess, the TLB and cache
// probes, the fault handler's entry) into the loop: the per-op call
// overhead is measurable at the ns/access scale this loop targets.
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((flatten))
#endif
void
System::runBatchLoop(std::vector<Cycles> &job_wall,
                     std::vector<u32> &job_live, u32 total_lanes)
{
    const bool sampled = config_.sampling.enabled();
    // A single lane owns the machine: let it drain whole buffers per
    // turn. With siblings, rotate on the scalar engine's quantum —
    // or, in tenant mode, on the configured scheduling quantum.
    const u32 quantum =
        total_lanes == 1 ? std::max<u32>(1, config_.batch_capacity)
        : tsched_       ? std::max<u32>(1, config_.tenant.quantum_ops)
                        : kSchedQuantum;
    u32 live = static_cast<u32>(lanes_.size());
    while (live > 0) {
        bool progressed = false;
        for (auto &lane : lanes_) {
            if (lane.done || lane.at_barrier)
                continue;
            progressed = true;
            if (tsched_)
                tenantClaim(lane);
            CoreState &core = cores_[lane.core];
            os::Process &proc = *core_process_[lane.core];
            workloads::AccessBuffer &buf = *lane.buf;
            // Tenant mode: snapshot the shared core's counters so this
            // turn's deltas can be banked against the job that ran.
            u64 t_acc = 0, t_tlb = 0, t_l1 = 0, t_l2 = 0, t_walks = 0,
                t_faults = 0, t_refs = 0;
            if (tsched_) {
                t_acc = core.accesses;
                t_tlb = core.tlb.accesses();
                t_l1 = core.tlb.l1Hits();
                t_l2 = core.tlb.l2Hits();
                t_walks = core.tlb.walks();
                t_faults = core.faults;
                t_refs = core.walker.totalRefs();
            }
            u32 b = 0;
            while (b < quantum) {
                if (lane.consumed == buf.size()) {
                    // Buffer drained: take a deferred batch end, or
                    // refill. Refills happen lazily *here* — at the
                    // start of the consuming turn, exactly where the
                    // scalar engine would resume the generator — so
                    // barrier/EOF discovery and host-side production
                    // keep the scalar engine's timing.
                    if (lane.pending_barrier) {
                        lane.pending_barrier = false;
                        lane.at_barrier = true;
                        maybeReleaseBarrier(lane.job);
                        break;
                    }
                    if (lane.pending_eof) {
                        lane.done = true;
                        --live;
                        --job_live[lane.job];
                        if (job_live[lane.job] == 0) {
                            Cycles wall = 0;
                            for (const auto &l2 : lanes_)
                                if (l2.job == lane.job)
                                    wall = std::max(wall,
                                                    cores_[l2.core].cycles);
                            job_wall[lane.job] = wall;
                        }
                        maybeReleaseBarrier(lane.job);
                        break;
                    }
                    buf.clear();
                    lane.consumed = 0;
                    if (lane.gen.next()) {
                        lane.pending_barrier =
                            lane.gen.value() ==
                            workloads::BatchEnd::Barrier;
                        PCCSIM_ASSERT(
                            !buf.empty() || lane.pending_barrier,
                            "batchLane yielded an empty Ops batch");
                    } else {
                        lane.pending_eof = true;
                    }
                    continue;
                }
                u32 chunk = std::min(buf.size() - lane.consumed,
                                     quantum - b);
                if (sampled) {
                    chunk = static_cast<u32>(
                        std::min<u64>(chunk, phase_left_));
                }
                const Addr *addrs = buf.addrs() + lane.consumed;
                const u8 *kinds = buf.kinds() + lane.consumed;
                if (!sampled ||
                    sample_phase_ != SamplePhase::FastForward) {
                    for (u32 i = 0; i < chunk; ++i) {
                        core.cycles += doAccess(
                            core, proc, addrs[i],
                            kinds[i] ==
                                static_cast<u8>(
                                    workloads::OpKind::Store));
                        ++total_accesses_;
                        if (total_accesses_ >= next_interval_at_)
                            onInterval(total_lanes);
                    }
                    if (sampled)
                        detailed_total_ += chunk;
                } else {
                    for (u32 i = 0; i < chunk; ++i) {
                        doFastForward(core, proc, addrs[i]);
                        ++total_accesses_;
                        if (total_accesses_ >= next_interval_at_)
                            onInterval(total_lanes);
                    }
                    ff_total_ += chunk;
                }
                lane.consumed += chunk;
                b += chunk;
                if (sampled) {
                    phase_left_ -= chunk;
                    if (phase_left_ == 0) {
                        switch (sample_phase_) {
                          case SamplePhase::Warming:
                            beginMeasurement();
                            break;
                          case SamplePhase::Measuring:
                            closeSampleWindow();
                            break;
                          case SamplePhase::FastForward:
                            beginSampleWindow();
                            break;
                        }
                    }
                }
            }
            if (tsched_) {
                JobTally &tally = job_tally_[lane.job];
                tally.accesses += core.accesses - t_acc;
                tally.tlb_accesses += core.tlb.accesses() - t_tlb;
                tally.l1_hits += core.tlb.l1Hits() - t_l1;
                tally.l2_hits += core.tlb.l2Hits() - t_l2;
                tally.walks += core.tlb.walks() - t_walks;
                tally.faults += core.faults - t_faults;
                tally.walker_refs += core.walker.totalRefs() - t_refs;
                tsched_->noteOps(lane.job, core.accesses - t_acc);
            }
            if (config_.progress) {
                config_.progress->store(total_accesses_,
                                        std::memory_order_relaxed);
            }
            if (config_.cancel &&
                config_.cancel->load(std::memory_order_relaxed)) {
                throw CancelledError(
                    "run cancelled after " +
                    std::to_string(total_accesses_) + " accesses");
            }
        }
        PCCSIM_ASSERT(progressed || live == 0,
                      "scheduler deadlock: all live lanes parked");
    }
}

void
System::doFastForward(CoreState &core, os::Process &proc, Addr vaddr)
{
    ++core.accesses;
    // Accessed-bit state *before* this access, mirroring the
    // pte_was_accessed observation a real walk would have made.
    const bool was_touched = proc.touched(vaddr);
    proc.noteTouched(vaddr);
    Cycles cost = ff_charge_;
    if (!proc.faulted(vaddr)) {
        const bool want_huge = policy_->wantHugeFault(proc, vaddr);
        cost += os_->handleFault(proc, vaddr, want_huge);
        ++core.faults;
        // No TLB fill, no dcache touch: fast-forward keeps the OS
        // truthful, not the hardware warm.
    }
    // Bresenham-thinned PCC feed at the walks-per-access rate of the
    // last detailed window: integer state, deterministic, and cheap.
    pcc_rate_acc_ += pcc_rate_num_;
    if (pcc_rate_acc_ >= pcc_rate_den_) {
        pcc_rate_acc_ -= pcc_rate_den_;
        core.pcc.observeSampled(
            vaddr, proc.mappingSizeOf(vaddr) == mem::PageSize::Base4K,
            was_touched);
    }
    core.cycles += cost;
}

void
System::beginSampleWindow()
{
    // The measured half is W/2 rounded up, so W = 1 degenerates to a
    // warm-up-free single measured access instead of an empty window.
    const u64 w = config_.sampling.window;
    win_measured_ = (w + 1) / 2;
    const u64 warm = w - win_measured_;
    if (warm == 0) {
        beginMeasurement();
        return;
    }
    sample_phase_ = SamplePhase::Warming;
    phase_left_ = warm;
}

void
System::beginMeasurement()
{
    sample_phase_ = SamplePhase::Measuring;
    phase_left_ = win_measured_;
    win_start_walks_ = sumWalks();
    win_start_walk_cycles_ = sumWalkCycles();
    win_start_tlb_accesses_ = sumTlbAccesses();
    win_start_cycles_ = sumCycles();
}

void
System::closeSampleWindow()
{
    const u64 w = win_measured_;
    const u64 walks = sumWalks() - win_start_walks_;
    const u64 walk_cycles = sumWalkCycles() - win_start_walk_cycles_;
    const u64 tlb_accesses =
        sumTlbAccesses() - win_start_tlb_accesses_;
    const u64 cycles = sumCycles() - win_start_cycles_;
    win_miss_rates_.push_back(
        tlb_accesses == 0
            ? 0.0
            : 100.0 * static_cast<double>(walks) /
                  static_cast<double>(tlb_accesses));
    win_walk_cycles_.push_back(static_cast<double>(walk_cycles) /
                               static_cast<double>(w));
    // Fast-forward charging and PCC thinning both inherit this
    // window's rates (integer arithmetic keeps runs deterministic).
    ff_charge_ = cycles / w;
    pcc_rate_num_ = walks;
    pcc_rate_den_ = w;
    pcc_rate_acc_ = 0;
    sample_phase_ = SamplePhase::FastForward;
    phase_left_ = config_.sampling.fastforward;
}

SamplingStats
System::sampleStats() const
{
    SamplingStats s;
    s.enabled = true;
    s.window = config_.sampling.window;
    s.fastforward = config_.sampling.fastforward;
    s.windows = win_miss_rates_.size();
    s.detailed_accesses = detailed_total_;
    s.ff_accesses = ff_total_;
    const auto meanCi = [](const std::vector<double> &v, double &mean,
                           double &ci95) {
        if (v.empty()) {
            mean = 0.0;
            ci95 = 0.0;
            return;
        }
        double sum = 0.0;
        for (double x : v)
            sum += x;
        mean = sum / static_cast<double>(v.size());
        if (v.size() < 2) {
            ci95 = 0.0;
            return;
        }
        double var = 0.0;
        for (double x : v)
            var += (x - mean) * (x - mean);
        var /= static_cast<double>(v.size() - 1);
        ci95 = 1.96 * std::sqrt(var / static_cast<double>(v.size()));
    };
    meanCi(win_miss_rates_, s.miss_rate_mean, s.miss_rate_ci95);
    meanCi(win_walk_cycles_, s.walk_cycles_mean, s.walk_cycles_ci95);
    return s;
}

u64
System::sumWalks() const
{
    u64 total = 0;
    for (const auto &core : cores_)
        total += core.tlb.walks();
    return total;
}

u64
System::sumWalkCycles() const
{
    u64 total = 0;
    for (const auto &core : cores_)
        total += core.walk_cycles;
    return total;
}

u64
System::sumTlbAccesses() const
{
    u64 total = 0;
    for (const auto &core : cores_)
        total += core.tlb.accesses();
    return total;
}

u64
System::sumCycles() const
{
    u64 total = 0;
    for (const auto &core : cores_)
        total += core.cycles;
    return total;
}

RunResult
System::run(std::vector<Job> jobs)
{
    if (util::Status status = config_.validate(); !status.ok())
        fatal("invalid SystemConfig: ", status.toString());
    PCCSIM_ASSERT(!jobs.empty());
    u64 phase_t0 = util::HostProfile::nowNanos();
    u32 total_lanes = 0;
    for (const auto &job : jobs)
        total_lanes += job.lanes;
    const bool tenant_mode = config_.tenant.enabled();
    if (tenant_mode) {
        // Tenants are single-lane streams time-sharing tenant.cores
        // cores; the whole point is more tenants than cores.
        for (const auto &job : jobs) {
            PCCSIM_ASSERT(job.lanes == 1,
                          "tenant mode runs single-lane jobs");
        }
    } else {
        PCCSIM_ASSERT(total_lanes <= config_.num_cores,
                      "more lanes than cores");
    }

    // ---- set up processes and workloads ----
    u64 total_footprint = 0;
    std::vector<os::Process *> procs;
    {
        // Physical memory is sized from the declared footprints, so
        // allocate processes first, then the memory + OS.
        std::vector<std::unique_ptr<os::Process>> staged;
        (void)staged;
    }
    // Create the OS late: we need footprints for auto-sizing physical
    // memory, but processes live inside the OS. Solve by creating the
    // OS with a deferred-size physical memory: do a dry setup pass on
    // scratch processes first.
    u64 declared = 0;
    {
        for (auto &job : jobs) {
            os::Process scratch(999, config_.heap_capacity);
            job.workload->setup(scratch);
            // Use the VMA-rounded footprint: promotion budgets and
            // coverage percentages are defined over whole regions.
            declared += scratch.footprintBytes();
        }
    }
    u64 phys_bytes = config_.phys_bytes;
    if (phys_bytes == 0) {
        phys_bytes = static_cast<u64>(
            static_cast<double>(declared) * config_.phys_headroom);
        phys_bytes += 64ull << 20;
        phys_bytes = mem::alignUp(phys_bytes, mem::PageSize::Huge1G);
    }
    phys_ = std::make_unique<mem::PhysicalMemory>(phys_bytes);
    installFaultInjection();

    os::Os::Params os_params;
    os_params.costs = config_.costs;
    os_params.promote_retries = config_.promote_retries;
    os_params.reclaim_on_pressure = config_.reclaim_on_pressure;
    if (config_.promotion_cap_percent == 0.0) {
        os_params.promotion_cap_bytes = 0;
    } else if (config_.promotion_cap_percent > 0.0) {
        // Round the budget up to whole 2MB regions so small-footprint
        // runs can still express the paper's 1-4% utility points.
        os_params.promotion_cap_bytes = mem::alignUp(
            static_cast<u64>(config_.promotion_cap_percent / 100.0 *
                             static_cast<double>(declared)),
            mem::PageSize::Huge2M);
    }
    os_ = std::make_unique<os::Os>(os_params, *phys_);
    policy_ = makePolicy();
    installShootdownHook();
    installReclaimRanker();
    if (config_.record_trace) {
        os_->setPromotionHook(
            [this](Pid pid, Addr base, mem::PageSize size) {
                recorded_.record(total_accesses_, pid, base, size);
            });
    }
    setupTelemetry(jobs.size());
    oracle_.reset();
    if (config_.oracle.enabled) {
        oracle_ = std::make_unique<DiffChecker>(
            config_.oracle, config_.tlb, config_.num_cores);
    }

    if (config_.frag_fraction > 0.0) {
        Rng rng(config_.seed ^ 0xf7a6);
        phys_->fragment(config_.frag_fraction, rng);
        // Fragmented memory has no readily-free 2MB blocks: huge
        // frames must be produced by compaction (Sec. 5.1.1).
        phys_->scramble(rng);
    }

    // Real setup on the real processes.
    total_footprint = 0;
    for (u32 j = 0; j < jobs.size(); ++j) {
        os::Process &proc = os_->createProcess(config_.heap_capacity);
        jobs[j].workload->setup(proc);
        if (config_.process_setup)
            config_.process_setup(proc, j);
        total_footprint += jobs[j].workload->footprintBytes();
        procs.push_back(&proc);
    }

    // ---- lanes and core assignment ----
    lanes_.clear();
    // Single-lane runs may batch as deep as configured; with multiple
    // lanes the buffer is clamped to the scheduling quantum so the
    // host-side production interleaving matches the scalar engine (in
    // tenant mode, the configured tenant quantum).
    const u32 buf_capacity =
        total_lanes == 1 ? std::max<u32>(1, config_.batch_capacity)
        : tenant_mode    ? std::max<u32>(1, config_.tenant.quantum_ops)
                         : kSchedQuantum;
    u32 core_cursor = 0;
    for (u32 j = 0; j < jobs.size(); ++j) {
        for (u32 l = 0; l < jobs[j].lanes; ++l) {
            LaneState lane;
            if (config_.batch_engine) {
                // Allocate the buffer before creating the coroutine:
                // batchLane() captures a reference to it, and the
                // heap allocation keeps that reference stable across
                // lanes_ vector relocations.
                lane.buf = std::make_unique<workloads::AccessBuffer>(
                    buf_capacity);
                lane.gen = jobs[j].workload->batchLane(
                    l, jobs[j].lanes, *lane.buf);
            } else {
                lane.scalar_gen =
                    jobs[j].workload->lane(l, jobs[j].lanes);
            }
            // Tenant mode: jobs are single-lane, tenants j map onto
            // shared cores round-robin (tenant j -> core j % cores).
            const u32 core =
                tenant_mode ? j % config_.tenant.cores : core_cursor;
            lane.core = core;
            lane.job = j;
            lanes_.push_back(std::move(lane));
            if (!tenant_mode || j < config_.tenant.cores) {
                // First tenant landing on each shared core becomes its
                // boot-time current process; later tenants take over
                // via tenantClaim (a counted, costed switch).
                cores_[core].pid = procs[j]->pid();
                cores_[core].job = j;
                cores_[core].lane = l;
                core_process_[core] = procs[j];
            }
            ++core_cursor;
        }
    }
    const u32 used_cores =
        tenant_mode
            ? std::min<u32>(config_.tenant.cores,
                            static_cast<u32>(jobs.size()))
            : core_cursor;
    for (u32 c = used_cores; c < config_.num_cores; ++c)
        core_process_[c] = procs.empty() ? nullptr : procs[0];

    job_process_ = procs;
    job_tally_.assign(jobs.size(), JobTally{});
    tsched_.reset();
    if (tenant_mode) {
        tsched_ = std::make_unique<tenant::Scheduler>(
            config_.tenant, static_cast<u32>(jobs.size()));
        for (u32 c = 0; c < used_cores; ++c) {
            // Seed the boot-time occupant (claim-free, like the lane
            // assignment above) and, under ASID switching, tag the
            // core's TLB with its pid-derived ASID. Tenant 0 keeps
            // ASID 0, so a 1-tenant ASID run produces exactly the raw
            // (untagged) TLB keys of the single-process path.
            tsched_->seed(c, c);
            if (config_.tenant.switch_mode == tenant::SwitchMode::Asid) {
                cores_[c].tlb.setCurrentAsid(
                    static_cast<Asid>(procs[c]->pid()));
            }
        }
    }

    total_accesses_ = 0;
    next_interval_at_ =
        config_.interval_accesses * std::max<u32>(1, total_lanes);
    intervals_ = 0;
    shootdowns_ = 0;
    shock_pins_ = 0;
    invariant_checks_ = 0;
    invariant_failures_ = 0;
    first_invariant_failure_.clear();

    win_miss_rates_.clear();
    win_walk_cycles_.clear();
    detailed_total_ = 0;
    ff_total_ = 0;
    ff_charge_ = 0;
    pcc_rate_num_ = 0;
    pcc_rate_den_ = 1;
    pcc_rate_acc_ = 0;
    if (config_.sampling.enabled())
        beginSampleWindow();

    std::vector<Cycles> job_wall(jobs.size(), 0);
    std::vector<u32> job_live(jobs.size(), 0);
    for (const auto &lane : lanes_)
        ++job_live[lane.job];

    // ---- main scheduling loop ----
    {
        const u64 now = util::HostProfile::nowNanos();
        util::HostProfile::global().add("workload_setup",
                                        now - phase_t0);
        phase_t0 = now;
    }
    if (config_.batch_engine)
        runBatchLoop(job_wall, job_live, total_lanes);
    else
        runScalarLoop(job_wall, job_live, total_lanes);

    // ---- collect results ----
    util::HostProfile::global().add(
        "simulate", util::HostProfile::nowNanos() - phase_t0);
    if (config_.check_invariants)
        runInvariantChecks(); // final sweep over the end state
    if (oracle_) {
        // Counter audit: catches any divergence a sampled compare
        // skipped (the reference state drifts from the real state at
        // the first divergence, so the totals disagree).
        for (u32 c = 0; c < config_.num_cores; ++c) {
            const auto &t = cores_[c].tlb;
            oracle_->finish(c, t.accesses(), t.l1Hits(), t.l2Hits(),
                            t.walks());
        }
    }

    RunResult result;
    result.total_accesses = total_accesses_;
    result.os_background_cycles = os_->backgroundCycles();
    result.compactions = phys_->stats().get("compactions");
    result.shootdowns = shootdowns_;
    result.intervals = intervals_;

    auto &res = result.resilience;
    if (injector_) {
        res.injected_alloc_fails = injector_->allocFailsInjected();
        res.injected_compaction_fails =
            injector_->compactionFailsInjected();
        res.shootdown_storms = injector_->stormsInjected();
        res.frag_shocks = injector_->shocksApplied();
        res.shock_blocks_pinned = shock_pins_;
    }
    res.promote_retries = os_->stats().get("promote_retries");
    res.promote_retry_successes =
        os_->stats().get("promote_retry_successes");
    res.reclaim_events = os_->stats().get("reclaim_events");
    res.reclaim_demotions = os_->stats().get("reclaim_demotions");
    res.reclaimed_frames = os_->stats().get("reclaimed_frames");
    res.invariant_checks = invariant_checks_;
    res.invariant_failures = invariant_failures_;
    res.first_invariant_failure = first_invariant_failure_;

    if (config_.sampling.enabled())
        result.sampling = sampleStats();

    for (u32 j = 0; j < jobs.size(); ++j) {
        JobResult job_result;
        job_result.workload = jobs[j].workload->name();
        job_result.pid = procs[j]->pid();
        job_result.wall_cycles = job_wall[j];
        u64 refs = 0;
        if (tsched_) {
            // Shared cores: the per-turn tallies are the only per-job
            // attribution of the hardware counters.
            const JobTally &tally = job_tally_[j];
            job_result.accesses = tally.accesses;
            job_result.tlb_accesses = tally.tlb_accesses;
            job_result.l1_hits = tally.l1_hits;
            job_result.l2_hits = tally.l2_hits;
            job_result.walks = tally.walks;
            job_result.faults = tally.faults;
            refs = tally.walker_refs;
        } else {
            for (const auto &lane : lanes_) {
                if (lane.job != j)
                    continue;
                const CoreState &core = cores_[lane.core];
                job_result.accesses += core.accesses;
                job_result.tlb_accesses += core.tlb.accesses();
                job_result.l1_hits += core.tlb.l1Hits();
                job_result.l2_hits += core.tlb.l2Hits();
                job_result.walks += core.tlb.walks();
                job_result.faults += core.faults;
                refs += core.walker.totalRefs();
            }
        }
        job_result.refs_per_walk =
            job_result.walks == 0
                ? 0.0
                : static_cast<double>(refs) /
                      static_cast<double>(job_result.walks);
        job_result.promotions = procs[j]->promotions();
        job_result.promotions_1g = procs[j]->promotions1G();
        job_result.demotions = procs[j]->demotions();
        job_result.footprint_bytes = procs[j]->footprintBytes();
        job_result.promoted_bytes = procs[j]->promotedBytes();
        job_result.bloat_pages = procs[j]->bloatPages();
        result.jobs.push_back(std::move(job_result));
        result.wall_cycles =
            std::max(result.wall_cycles, job_wall[j]);
    }

    if (tel_sampler_) {
        auto report = std::make_shared<telemetry::TelemetryReport>();
        report->intervals = intervals_;
        report->counters = tel_registry_->readAll();
        report->series = tel_sampler_->takeSeries();
        if (tel_tracer_) {
            report->events_dropped = tel_tracer_->dropped();
            report->events = tel_tracer_->takeEvents();
        }
        if (tel_profiler_)
            report->attribution = tel_profiler_->report();
        if (tel_audit_)
            report->audit = tel_audit_->report();
        if (tel_tail_) {
            report->tail = tel_tail_->report();
            // Link every worst-K exemplar to the latest promotion
            // decision about its region (no-op without --audit).
            telemetry::annotateExemplars(report->tail, report->audit);
        }
        result.telemetry = std::move(report);
    }
    return result;
}

} // namespace pccsim::sim
