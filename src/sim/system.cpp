#include "sim/system.hpp"

#include <algorithm>

#include "sim/invariants.hpp"
#include "util/log.hpp"

namespace pccsim::sim {

std::string
to_string(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Base: return "base-4k";
      case PolicyKind::AllHuge: return "all-huge";
      case PolicyKind::LinuxThp: return "linux-thp";
      case PolicyKind::HawkEye: return "hawkeye";
      case PolicyKind::Pcc: return "pcc";
      case PolicyKind::TraceReplay: return "trace-replay";
    }
    return "?";
}

System::System(SystemConfig config) : config_(std::move(config))
{
    PCCSIM_ASSERT(config_.num_cores >= 1);
    cores_.reserve(config_.num_cores);
    for (u32 c = 0; c < config_.num_cores; ++c)
        cores_.emplace_back(config_);
    core_process_.assign(config_.num_cores, nullptr);
    // Victim-buffer candidate source (Sec. 5.4.1 alternative). Only
    // wire the hook when that source is selected: observeL2Victim() is
    // a no-op otherwise, and an unset hook lets the TLB skip a
    // std::function call on every L2 displacement (a hot-path cost on
    // walk-heavy workloads).
    if (config_.pcc.source == pcc::CandidateSource::L2Victims) {
        for (auto &core : cores_) {
            core.tlb.setL2VictimHook(
                [&core](Vpn vpn, mem::PageSize size) {
                    core.pcc.observeL2Victim(vpn, size);
                });
        }
    }
}

System::~System() = default;

std::unique_ptr<os::Policy>
System::makePolicy()
{
    switch (config_.policy) {
      case PolicyKind::Base:
        return std::make_unique<os::BasePagesPolicy>();
      case PolicyKind::AllHuge:
        return std::make_unique<os::AllHugePolicy>();
      case PolicyKind::LinuxThp:
        return std::make_unique<os::LinuxThpPolicy>(config_.linux_thp);
      case PolicyKind::HawkEye:
        return std::make_unique<os::HawkEyePolicy>(config_.hawkeye);
      case PolicyKind::Pcc:
        return std::make_unique<os::PccPolicy>(config_.pcc_policy);
      case PolicyKind::TraceReplay:
        return std::make_unique<os::TraceReplayPolicy>(
            config_.replay_trace);
    }
    panic("unhandled policy kind");
}

os::Process &
System::processOnCore(CoreId core)
{
    PCCSIM_ASSERT(core < core_process_.size() && core_process_[core]);
    return *core_process_[core];
}

pcc::PccUnit &
System::pccUnit(CoreId core)
{
    return cores_.at(core).pcc;
}

void
System::chargeCore(CoreId core, Cycles cycles)
{
    cores_.at(core).cycles += cycles;
}

void
System::installShootdownHook()
{
    os_->setShootdownHook([this](Pid pid, Addr base, u64 bytes) -> Cycles {
        ++shootdowns_;
        for (auto &core : cores_) {
            core.tlb.shootdown(base, bytes);
            core.walker.shootdown(base, bytes);
            core.pcc.shootdown(base, bytes);
            // The mapping (size or frame) changed somewhere; drop the
            // last-translation fast path so the next access re-probes.
            core.last_page_bytes = 0;
        }
        // The IPI cost lands on every core running the owning process.
        // Per-4KB invalidations (migration) are batched by the kernel
        // and charged once per compaction, so only charge full
        // shootdowns (>= one region) here.
        if (bytes >= mem::kBytes2M) {
            Cycles cost = config_.costs.shootdown;
            // An injected shootdown storm: IPI delivery contends with
            // a burst of unrelated invalidations, inflating latency.
            if (injector_)
                cost += injector_->shootdownDelay();
            for (u32 c = 0; c < config_.num_cores; ++c) {
                if (core_process_[c] && core_process_[c]->pid() == pid)
                    cores_[c].cycles += cost;
            }
        }
        return 0;
    });
}

void
System::installFaultInjection()
{
    injector_.reset();
    if (!config_.faults.any())
        return;
    injector_ =
        std::make_unique<FaultInjector>(config_.faults, config_.seed);
    phys_->setAllocGate(
        [this](unsigned order) { return injector_->allowAlloc(order); });
    phys_->setCompactionGate(
        [this] { return injector_->compactionMovesAllowed(); });
}

void
System::installReclaimRanker()
{
    // Rank reclaim victims by the same hardware signal that ranks
    // promotions: page-walk frequency from the PCCs of every core
    // running the owner. Promoted 2MB regions were invalidated from
    // the 2MB PCC, but their walks (as 2MB-mapped pages) still feed
    // the 1GB PCC, so the containing gigabyte's frequency stands in
    // as the hotness estimate; a 2MB-PCC hit (post-demotion residue)
    // is an even stronger signal.
    os_->setReclaimRanker([this](Pid pid, Addr base) -> u64 {
        const Vpn v2m = mem::vpnOf(base, mem::PageSize::Huge2M);
        const Vpn v1g = mem::vpnOf(base, mem::PageSize::Huge1G);
        u64 score = 0;
        for (u32 c = 0; c < config_.num_cores; ++c) {
            if (!core_process_[c] || core_process_[c]->pid() != pid)
                continue;
            const auto &unit = cores_[c].pcc;
            if (auto f = unit.pcc2m().frequencyOf(v2m))
                score = std::max(score, *f * mem::kPagesPer2M);
            if (auto f = unit.pcc1g().frequencyOf(v1g))
                score = std::max(score, *f);
        }
        return score;
    });
}

void
System::runInvariantChecks()
{
    util::Status status =
        checkMemoryConsistency(*os_, *phys_);
    for (u32 c = 0; c < config_.num_cores; ++c) {
        if (!core_process_[c])
            continue;
        const os::Process &proc = *core_process_[c];
        status.update(checkTlbResidency(cores_[c].tlb, proc));
        status.update(checkPccResidency(cores_[c].pcc, proc));
    }
    ++invariant_checks_;
    if (!status.ok()) {
        ++invariant_failures_;
        if (first_invariant_failure_.empty()) {
            first_invariant_failure_ = status.toString();
            warn("invariant violation (interval ", intervals_,
                 "): ", first_invariant_failure_);
        }
    }
}

Cycles
System::chargeWalkRefs(CoreState &core, const os::Process &proc,
                       Addr vaddr, unsigned refs, mem::PageSize size)
{
    if (!config_.timing.pt_through_dcache) {
        return config_.timing.walk_base +
               static_cast<Cycles>(refs) * config_.timing.walk_ref;
    }
    // Synthetic, per-process page-table entry addresses: walks fetch
    // real cache lines, so PTE locality (8 entries/line) and PT cache
    // pressure emerge naturally instead of being a constant.
    const Addr pt_base = 0xFA00'0000'0000ull +
                         (static_cast<Addr>(proc.pid()) << 44);
    const Addr pte_addr =
        pt_base + mem::vpnOf(vaddr, mem::PageSize::Base4K) * 8;
    const Addr pmd_addr = pt_base + 0x0080'0000'0000ull +
                          mem::vpnOf(vaddr, mem::PageSize::Huge2M) * 8;
    const Addr pud_addr = pt_base + 0x00C0'0000'0000ull +
                          mem::vpnOf(vaddr, mem::PageSize::Huge1G) * 8;
    const Addr pgd_addr =
        pt_base + 0x00E0'0000'0000ull + (vaddr >> 39) * 8;

    // Deepest level first; a walk with P refs touches the P deepest
    // levels of its leaf depth.
    Addr levels[4];
    unsigned depth = 0;
    switch (size) {
      case mem::PageSize::Base4K:
        levels[depth++] = pte_addr;
        [[fallthrough]];
      case mem::PageSize::Huge2M:
        levels[depth++] = pmd_addr;
        [[fallthrough]];
      case mem::PageSize::Huge1G:
        levels[depth++] = pud_addr;
        levels[depth++] = pgd_addr;
        break;
    }

    Cycles cost = 0;
    const unsigned n = std::min(refs, depth);
    for (unsigned i = 0; i < n; ++i)
        cost += core.dcache.access(levels[i]);
    return cost;
}

Cycles
System::doAccess(CoreState &core, os::Process &proc, Addr vaddr,
                 bool write)
{
    (void)write;
    Cycles cost = config_.timing.op_cost;
    ++core.accesses;
    // Keep liveness knowledge current even for huge-backed pages, whose
    // accesses never fault again — the pressure reclaimer must be able
    // to tell data from bloat.
    proc.noteTouched(vaddr);

    if (!proc.faulted(vaddr)) {
        const bool want_huge = policy_->wantHugeFault(proc, vaddr);
        cost += os_->handleFault(proc, vaddr, want_huge);
        ++core.faults;
        // The fault handler's walk loaded the translation.
        const mem::PageSize filled = proc.mappingSizeOf(vaddr);
        core.tlb.fill(vaddr, filled);
        core.noteTranslated(vaddr, filled);
        cost += core.dcache.access(vaddr);
        return cost;
    }

    // Last-translation fast path: the page is still L1-resident and
    // MRU (any mapping change since would have shot it down), so skip
    // the mapping query and the TLB set scan but account the access
    // identically to the L1-hit path below.
    if (config_.last_translation_cache &&
        vaddr - core.last_page_base < core.last_page_bytes) {
        core.tlb.noteRepeatL1Hit();
        cost += core.dcache.access(vaddr);
        return cost;
    }

    const mem::PageSize size = proc.mappingSizeOf(vaddr);
    const tlb::HitLevel level = core.tlb.access(vaddr, size);
    if (level == tlb::HitLevel::L2) {
        cost += config_.timing.l2_tlb_hit;
    } else if (level == tlb::HitLevel::Miss) {
        const auto walk = core.walker.walk(proc.pageTable(), vaddr);
        PCCSIM_DCHECK(walk.present, "walk missed a faulted page");
        cost += chargeWalkRefs(core, proc, vaddr, walk.memory_refs,
                               walk.size);
        core.tlb.fill(vaddr, size);
        core.pcc.observeWalk(vaddr, walk);
    }
    core.noteTranslated(vaddr, size);
    cost += core.dcache.access(vaddr);
    return cost;
}

void
System::maybeReleaseBarrier(u32 job)
{
    bool all_parked = true;
    for (const auto &lane : lanes_) {
        if (lane.job == job && !lane.done && !lane.at_barrier) {
            all_parked = false;
            break;
        }
    }
    if (!all_parked)
        return;

    // Barrier wait: every core of the job advances to the job maximum.
    Cycles max_cycles = 0;
    for (const auto &lane : lanes_)
        if (lane.job == job)
            max_cycles = std::max(max_cycles, cores_[lane.core].cycles);
    for (auto &lane : lanes_) {
        if (lane.job == job) {
            cores_[lane.core].cycles = max_cycles;
            lane.at_barrier = false;
        }
    }
}

RunResult
System::run(std::vector<Job> jobs)
{
    PCCSIM_ASSERT(!jobs.empty());
    u32 total_lanes = 0;
    for (const auto &job : jobs)
        total_lanes += job.lanes;
    PCCSIM_ASSERT(total_lanes <= config_.num_cores,
                  "more lanes than cores");

    // ---- set up processes and workloads ----
    u64 total_footprint = 0;
    std::vector<os::Process *> procs;
    {
        // Physical memory is sized from the declared footprints, so
        // allocate processes first, then the memory + OS.
        std::vector<std::unique_ptr<os::Process>> staged;
        (void)staged;
    }
    // Create the OS late: we need footprints for auto-sizing physical
    // memory, but processes live inside the OS. Solve by creating the
    // OS with a deferred-size physical memory: do a dry setup pass on
    // scratch processes first.
    u64 declared = 0;
    {
        for (auto &job : jobs) {
            os::Process scratch(999, config_.heap_capacity);
            job.workload->setup(scratch);
            // Use the VMA-rounded footprint: promotion budgets and
            // coverage percentages are defined over whole regions.
            declared += scratch.footprintBytes();
        }
    }
    u64 phys_bytes = config_.phys_bytes;
    if (phys_bytes == 0) {
        phys_bytes = static_cast<u64>(
            static_cast<double>(declared) * config_.phys_headroom);
        phys_bytes += 64ull << 20;
        phys_bytes = mem::alignUp(phys_bytes, mem::PageSize::Huge1G);
    }
    phys_ = std::make_unique<mem::PhysicalMemory>(phys_bytes);
    installFaultInjection();

    os::Os::Params os_params;
    os_params.costs = config_.costs;
    os_params.promote_retries = config_.promote_retries;
    os_params.reclaim_on_pressure = config_.reclaim_on_pressure;
    if (config_.promotion_cap_percent == 0.0) {
        os_params.promotion_cap_bytes = 0;
    } else if (config_.promotion_cap_percent > 0.0) {
        // Round the budget up to whole 2MB regions so small-footprint
        // runs can still express the paper's 1-4% utility points.
        os_params.promotion_cap_bytes = mem::alignUp(
            static_cast<u64>(config_.promotion_cap_percent / 100.0 *
                             static_cast<double>(declared)),
            mem::PageSize::Huge2M);
    }
    os_ = std::make_unique<os::Os>(os_params, *phys_);
    policy_ = makePolicy();
    installShootdownHook();
    installReclaimRanker();
    if (config_.record_trace) {
        os_->setPromotionHook(
            [this](Pid pid, Addr base, mem::PageSize size) {
                recorded_.record(total_accesses_, pid, base, size);
            });
    }

    if (config_.frag_fraction > 0.0) {
        Rng rng(config_.seed ^ 0xf7a6);
        phys_->fragment(config_.frag_fraction, rng);
        // Fragmented memory has no readily-free 2MB blocks: huge
        // frames must be produced by compaction (Sec. 5.1.1).
        phys_->scramble(rng);
    }

    // Real setup on the real processes.
    total_footprint = 0;
    for (u32 j = 0; j < jobs.size(); ++j) {
        os::Process &proc = os_->createProcess(config_.heap_capacity);
        jobs[j].workload->setup(proc);
        if (config_.process_setup)
            config_.process_setup(proc, j);
        total_footprint += jobs[j].workload->footprintBytes();
        procs.push_back(&proc);
    }

    // ---- lanes and core assignment ----
    lanes_.clear();
    u32 core_cursor = 0;
    for (u32 j = 0; j < jobs.size(); ++j) {
        for (u32 l = 0; l < jobs[j].lanes; ++l) {
            LaneState lane;
            lane.gen = jobs[j].workload->lane(l, jobs[j].lanes);
            lane.core = core_cursor;
            lane.job = j;
            lanes_.push_back(std::move(lane));
            cores_[core_cursor].pid = procs[j]->pid();
            cores_[core_cursor].job = j;
            cores_[core_cursor].lane = l;
            core_process_[core_cursor] = procs[j];
            ++core_cursor;
        }
    }
    for (u32 c = core_cursor; c < config_.num_cores; ++c)
        core_process_[c] = procs.empty() ? nullptr : procs[0];

    total_accesses_ = 0;
    next_interval_at_ =
        config_.interval_accesses * std::max<u32>(1, total_lanes);
    intervals_ = 0;
    shootdowns_ = 0;
    shock_pins_ = 0;
    invariant_checks_ = 0;
    invariant_failures_ = 0;
    first_invariant_failure_.clear();

    std::vector<Cycles> job_wall(jobs.size(), 0);
    std::vector<u32> job_live(jobs.size(), 0);
    for (const auto &lane : lanes_)
        ++job_live[lane.job];

    // ---- main scheduling loop ----
    constexpr u32 kBatch = 64;
    u32 live = static_cast<u32>(lanes_.size());
    while (live > 0) {
        bool progressed = false;
        for (auto &lane : lanes_) {
            if (lane.done || lane.at_barrier)
                continue;
            progressed = true;
            CoreState &core = cores_[lane.core];
            os::Process &proc = *core_process_[lane.core];
            for (u32 b = 0; b < kBatch; ++b) {
                if (!lane.gen.next()) {
                    lane.done = true;
                    --live;
                    --job_live[lane.job];
                    if (job_live[lane.job] == 0) {
                        Cycles wall = 0;
                        for (const auto &l2 : lanes_)
                            if (l2.job == lane.job)
                                wall = std::max(wall,
                                                cores_[l2.core].cycles);
                        job_wall[lane.job] = wall;
                    }
                    maybeReleaseBarrier(lane.job);
                    break;
                }
                const auto &op = lane.gen.value();
                if (op.kind == workloads::OpKind::Barrier) {
                    lane.at_barrier = true;
                    maybeReleaseBarrier(lane.job);
                    break;
                }
                core.cycles += doAccess(
                    core, proc, op.addr,
                    op.kind == workloads::OpKind::Store);
                ++total_accesses_;
                if (total_accesses_ >= next_interval_at_) {
                    ++intervals_;
                    next_interval_at_ +=
                        config_.interval_accesses *
                        std::max<u32>(1, total_lanes);
                    if (injector_ && injector_->shockDue(intervals_))
                        shock_pins_ += injector_->applyShock(*phys_);
                    policy_->onInterval(*this);
                    if (config_.check_invariants)
                        runInvariantChecks();
                }
            }
        }
        PCCSIM_ASSERT(progressed || live == 0,
                      "scheduler deadlock: all live lanes parked");
    }

    // ---- collect results ----
    if (config_.check_invariants)
        runInvariantChecks(); // final sweep over the end state

    RunResult result;
    result.total_accesses = total_accesses_;
    result.os_background_cycles = os_->backgroundCycles();
    result.compactions = phys_->stats().get("compactions");
    result.shootdowns = shootdowns_;
    result.intervals = intervals_;

    auto &res = result.resilience;
    if (injector_) {
        res.injected_alloc_fails = injector_->allocFailsInjected();
        res.injected_compaction_fails =
            injector_->compactionFailsInjected();
        res.shootdown_storms = injector_->stormsInjected();
        res.frag_shocks = injector_->shocksApplied();
        res.shock_blocks_pinned = shock_pins_;
    }
    res.promote_retries = os_->stats().get("promote_retries");
    res.promote_retry_successes =
        os_->stats().get("promote_retry_successes");
    res.reclaim_events = os_->stats().get("reclaim_events");
    res.reclaim_demotions = os_->stats().get("reclaim_demotions");
    res.reclaimed_frames = os_->stats().get("reclaimed_frames");
    res.invariant_checks = invariant_checks_;
    res.invariant_failures = invariant_failures_;
    res.first_invariant_failure = first_invariant_failure_;

    for (u32 j = 0; j < jobs.size(); ++j) {
        JobResult job_result;
        job_result.workload = jobs[j].workload->name();
        job_result.pid = procs[j]->pid();
        job_result.wall_cycles = job_wall[j];
        u64 refs = 0;
        for (const auto &lane : lanes_) {
            if (lane.job != j)
                continue;
            const CoreState &core = cores_[lane.core];
            job_result.accesses += core.accesses;
            job_result.tlb_accesses += core.tlb.accesses();
            job_result.l1_hits += core.tlb.l1Hits();
            job_result.l2_hits += core.tlb.l2Hits();
            job_result.walks += core.tlb.walks();
            job_result.faults += core.faults;
            refs += core.walker.totalRefs();
        }
        job_result.refs_per_walk =
            job_result.walks == 0
                ? 0.0
                : static_cast<double>(refs) /
                      static_cast<double>(job_result.walks);
        job_result.promotions = procs[j]->promotions();
        job_result.promotions_1g = procs[j]->promotions1G();
        job_result.demotions = procs[j]->demotions();
        job_result.footprint_bytes = procs[j]->footprintBytes();
        job_result.promoted_bytes = procs[j]->promotedBytes();
        job_result.bloat_pages = procs[j]->bloatPages();
        result.jobs.push_back(std::move(job_result));
        result.wall_cycles =
            std::max(result.wall_cycles, job_wall[j]);
    }
    return result;
}

} // namespace pccsim::sim
