/**
 * @file
 * High-level experiment drivers shared by the benchmark harnesses:
 * single runs, baseline/ideal pairs, and the paper's utility-curve
 * sweep (huge pages limited to N% of the application footprint).
 */

#pragma once

#include <functional>
#include <vector>

#include "sim/system.hpp"
#include "workloads/registry.hpp"

namespace pccsim::sim {

class Runner;

/** Everything needed to reproduce one run. */
struct ExperimentSpec
{
    workloads::WorkloadSpec workload{};
    u32 lanes = 1;
    PolicyKind policy = PolicyKind::Base;
    /**
     * Registry policy selector; overrides `policy` when non-empty.
     * Prefer applyPolicySelector() over assigning directly — it
     * canonicalizes bare legacy keys onto the enum so those specs keep
     * their pre-registry memo keys.
     */
    std::string policy_str;
    /** Translation-hardware backend selector ("" = baseline). */
    std::string hw;
    double cap_percent = -1.0; //!< promotion budget; < 0 = unlimited
    double frag_fraction = 0.0;
    os::PccPolicy::Params pcc_policy{};
    /** Telemetry collection for this run (off by default). */
    telemetry::TelemetryConfig telemetry{};
    /** Deterministic fault injection for this run (off by default). */
    FaultConfig faults{};
    /** Sweep cross-layer invariants every interval (tests only). */
    bool check_invariants = false;
    /** Policy interval override; 0 keeps the scale default. */
    u64 interval_accesses = 0;
    /**
     * Differential oracle for this run. Result-neutral (the run either
     * produces the identical RunResult or throws OracleError), so it
     * is deliberately NOT part of specKey() — an oracle-checked run
     * may serve and be served by non-oracle memo entries.
     */
    OracleConfig oracle{};
    /** Test-only planted hot-path bug (part of the spec identity). */
    HotPathMutation mutation = HotPathMutation::None;
    /**
     * SMARTS-style sampling for this run. NOT result-neutral — a
     * sampled run fast-forwards most accesses and reports estimates —
     * so unlike `oracle` it IS part of specKey(): a sampled result
     * must never be served from (or into) an exact run's memo entry.
     */
    SystemConfig::SamplingConfig sampling{};
    /** Final hook to adjust the SystemConfig (PCC size sweeps etc.). */
    std::function<void(SystemConfig &)> tweak;
    /**
     * Canonical label for `tweak`, making the spec memoizable by the
     * runner: two specs with equal keys (and equal plain fields) must
     * describe identical runs. Leave empty while `tweak` is set to opt
     * the spec out of memoization/deduplication (it still runs, every
     * time).
     */
    std::string tweak_key;
};

/** Build the SystemConfig an ExperimentSpec implies. */
SystemConfig configFor(const ExperimentSpec &spec);

/**
 * Spec-level twin of applyPolicySelector(SystemConfig&, ...): bare
 * legacy keys land on spec.policy (keeping the legacy spec key),
 * everything else on spec.policy_str.
 */
util::Status applyPolicySelector(ExperimentSpec &spec,
                                 std::string_view selector);

/** Display name of the spec's policy (selector or enum name). */
std::string policyNameOf(const ExperimentSpec &spec);

/**
 * Shared CLI hook for `--policy=list` / `--hw=list`: when either value
 * is "list", print the corresponding registry listing (keys,
 * descriptions, param grammars) to stdout and return true — the caller
 * should then exit 0.
 */
bool handleListFlags(const std::string &policy_value,
                     const std::string &hw_value);

/** Run one experiment to completion. */
RunResult runOne(const ExperimentSpec &spec);

/**
 * Run one experiment under cooperative supervision: `progress` (may be
 * null) receives the simulated-access count as the run advances, and
 * setting `cancel` makes the run throw CancelledError at the next
 * batch boundary. Used by the resilient runner's watchdog.
 */
RunResult runOne(const ExperimentSpec &spec, std::atomic<u64> *progress,
                 const std::atomic<bool> *cancel);

/** The paper's utility-curve x-axis: 0,1,2,4,...,64 and ~100 (%). */
const std::vector<double> &utilityCaps();

/** One point of a utility curve. */
struct CurvePoint
{
    double cap_percent; //!< -1 encodes the ~100% (unlimited) point
    double speedup;
    double ptw_percent;
    u64 promotions;
};

/**
 * Sweep the promotion cap for a policy and report speedups relative
 * to the supplied 4KB baseline run. The sweep's nine runs go through
 * `runner` (default: Runner::global()) — deduplicated, memoized, and
 * executed in parallel when the runner has jobs() > 1.
 */
std::vector<CurvePoint> utilityCurve(const ExperimentSpec &spec,
                                     const RunResult &baseline,
                                     Runner *runner = nullptr);

/**
 * Run a graph workload over the requested datasets (network kinds x
 * sorted/unsorted) and return the geomean speedup vs. per-dataset
 * baselines — the aggregation of Sec. 4.
 */
struct DatasetSweep
{
    std::vector<graph::NetworkKind> networks = {
        graph::NetworkKind::Kronecker};
    bool include_sorted = false;
};

double geomeanSpeedup(const ExperimentSpec &spec,
                      const DatasetSweep &sweep,
                      Runner *runner = nullptr);

} // namespace pccsim::sim
