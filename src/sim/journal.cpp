#include "sim/journal.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "util/log.hpp"

namespace pccsim::sim {

namespace {

u64
fnv1a(const std::string &data)
{
    u64 hash = 0xcbf29ce484222325ull;
    for (unsigned char c : data) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

std::string
toHex(u64 value)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

/**
 * %-escape a string into a single space-free token. A leading 's'
 * marker keeps empty strings representable (the token is never empty)
 * and makes decoding self-describing.
 */
std::string
escapeString(const std::string &in)
{
    std::string out = "s";
    for (unsigned char c : in) {
        if (c == '%' || c == ' ' || c == '\n' || c == '\r' ||
            c == '\t') {
            char buf[4];
            std::snprintf(buf, sizeof(buf), "%%%02x", c);
            out += buf;
        } else {
            out += static_cast<char>(c);
        }
    }
    return out;
}

std::optional<std::string>
unescapeString(const std::string &token)
{
    if (token.empty() || token[0] != 's')
        return std::nullopt;
    std::string out;
    for (size_t i = 1; i < token.size(); ++i) {
        if (token[i] != '%') {
            out += token[i];
            continue;
        }
        if (i + 2 >= token.size())
            return std::nullopt;
        const std::string hex = token.substr(i + 1, 2);
        char *end = nullptr;
        const long v = std::strtol(hex.c_str(), &end, 16);
        if (end != hex.c_str() + 2)
            return std::nullopt;
        out += static_cast<char>(v);
        i += 2;
    }
    return out;
}

/** Sequential token reader with sticky failure. */
class TokenReader
{
  public:
    explicit TokenReader(const std::string &payload)
    {
        std::istringstream is(payload);
        std::string tok;
        while (is >> tok)
            tokens_.push_back(std::move(tok));
    }

    bool failed() const { return failed_; }
    bool exhausted() const { return next_ >= tokens_.size(); }

    u64
    nextU64()
    {
        const std::string *tok = take();
        if (!tok)
            return 0;
        char *end = nullptr;
        const u64 v = std::strtoull(tok->c_str(), &end, 10);
        if (end != tok->c_str() + tok->size())
            failed_ = true;
        return v;
    }

    double
    nextDouble()
    {
        const std::string *tok = take();
        if (!tok)
            return 0.0;
        char *end = nullptr;
        // strtod parses the C99 hexfloat form encodeResult emits, so
        // the double round-trips bit-exactly.
        const double v = std::strtod(tok->c_str(), &end);
        if (end != tok->c_str() + tok->size())
            failed_ = true;
        return v;
    }

    std::string
    nextString()
    {
        const std::string *tok = take();
        if (!tok)
            return {};
        auto decoded = unescapeString(*tok);
        if (!decoded) {
            failed_ = true;
            return {};
        }
        return *decoded;
    }

  private:
    const std::string *
    take()
    {
        if (next_ >= tokens_.size()) {
            failed_ = true;
            return nullptr;
        }
        return &tokens_[next_++];
    }

    std::vector<std::string> tokens_;
    size_t next_ = 0;
    bool failed_ = false;
};

} // namespace

bool
ResultJournal::serializable(const RunResult &result)
{
    return result.telemetry == nullptr;
}

std::string
ResultJournal::encodeResult(const RunResult &result)
{
    std::ostringstream os;
    os << result.wall_cycles << ' ' << result.total_accesses << ' '
       << result.os_background_cycles << ' ' << result.compactions
       << ' ' << result.shootdowns << ' ' << result.intervals;
    const auto &r = result.resilience;
    os << ' ' << r.injected_alloc_fails << ' '
       << r.injected_compaction_fails << ' ' << r.shootdown_storms
       << ' ' << r.frag_shocks << ' ' << r.shock_blocks_pinned << ' '
       << r.promote_retries << ' ' << r.promote_retry_successes << ' '
       << r.reclaim_events << ' ' << r.reclaim_demotions << ' '
       << r.reclaimed_frames << ' ' << r.invariant_checks << ' '
       << r.invariant_failures << ' '
       << escapeString(r.first_invariant_failure);
    os << ' ' << result.jobs.size();
    os << std::hexfloat;
    for (const auto &job : result.jobs) {
        os << ' ' << escapeString(job.workload) << ' ' << job.pid << ' '
           << job.wall_cycles << ' ' << job.accesses << ' '
           << job.tlb_accesses << ' ' << job.l1_hits << ' '
           << job.l2_hits << ' ' << job.walks << ' '
           << job.refs_per_walk << ' ' << job.faults << ' '
           << job.promotions << ' ' << job.promotions_1g << ' '
           << job.demotions << ' ' << job.footprint_bytes << ' '
           << job.promoted_bytes << ' ' << job.bloat_pages;
    }
    return os.str();
}

std::optional<RunResult>
ResultJournal::decodeResult(const std::string &payload)
{
    TokenReader in(payload);
    RunResult result;
    result.wall_cycles = in.nextU64();
    result.total_accesses = in.nextU64();
    result.os_background_cycles = in.nextU64();
    result.compactions = in.nextU64();
    result.shootdowns = in.nextU64();
    result.intervals = in.nextU64();
    auto &r = result.resilience;
    r.injected_alloc_fails = in.nextU64();
    r.injected_compaction_fails = in.nextU64();
    r.shootdown_storms = in.nextU64();
    r.frag_shocks = in.nextU64();
    r.shock_blocks_pinned = in.nextU64();
    r.promote_retries = in.nextU64();
    r.promote_retry_successes = in.nextU64();
    r.reclaim_events = in.nextU64();
    r.reclaim_demotions = in.nextU64();
    r.reclaimed_frames = in.nextU64();
    r.invariant_checks = in.nextU64();
    r.invariant_failures = in.nextU64();
    r.first_invariant_failure = in.nextString();
    const u64 num_jobs = in.nextU64();
    if (in.failed() || num_jobs > 4096)
        return std::nullopt;
    result.jobs.reserve(num_jobs);
    for (u64 j = 0; j < num_jobs; ++j) {
        JobResult job;
        job.workload = in.nextString();
        job.pid = static_cast<Pid>(in.nextU64());
        job.wall_cycles = in.nextU64();
        job.accesses = in.nextU64();
        job.tlb_accesses = in.nextU64();
        job.l1_hits = in.nextU64();
        job.l2_hits = in.nextU64();
        job.walks = in.nextU64();
        job.refs_per_walk = in.nextDouble();
        job.faults = in.nextU64();
        job.promotions = in.nextU64();
        job.promotions_1g = in.nextU64();
        job.demotions = in.nextU64();
        job.footprint_bytes = in.nextU64();
        job.promoted_bytes = in.nextU64();
        job.bloat_pages = in.nextU64();
        result.jobs.push_back(std::move(job));
    }
    if (in.failed() || !in.exhausted())
        return std::nullopt;
    return result;
}

ResultJournal::ResultJournal(std::string path) : path_(std::move(path))
{
    std::ifstream existing(path_);
    if (existing.good()) {
        std::string header;
        std::getline(existing, header);
        if (header != kHeader) {
            warn("journal '", path_, "': unknown header '", header,
                 "' (expected '", kHeader,
                 "'); journal disabled for this run");
            return;
        }
    } else {
        // Create atomically: a crash between open and header write
        // must not leave a header-less file a later run would reject.
        const std::string tmp = path_ + ".tmp";
        {
            std::ofstream create(tmp, std::ios::trunc);
            if (!create.good()) {
                warn("journal '", path_, "': cannot create '", tmp, "'");
                return;
            }
            create << kHeader << '\n';
            create.flush();
            if (!create.good()) {
                warn("journal '", path_, "': header write failed");
                return;
            }
        }
        if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
            warn("journal '", path_, "': rename from '", tmp,
                 "' failed");
            std::remove(tmp.c_str());
            return;
        }
    }
    out_.open(path_, std::ios::app);
    if (!out_.good()) {
        warn("journal '", path_, "': cannot open for append");
        return;
    }
    ok_ = true;
}

ResultJournal::LoadStats
ResultJournal::load(
    std::map<std::string, std::shared_ptr<const RunResult>> &into)
{
    LoadStats stats;
    if (!ok_)
        return stats;
    std::ifstream in(path_);
    std::string line;
    std::getline(in, line); // header, validated in the constructor
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream is(line);
        std::string tag, hash_hex, key_token;
        if (!(is >> tag >> hash_hex >> key_token) || tag != "R") {
            ++stats.malformed;
            continue;
        }
        std::string payload;
        std::getline(is, payload);
        if (!payload.empty() && payload.front() == ' ')
            payload.erase(0, 1);
        const auto key = unescapeString(key_token);
        if (!key || payload.empty() ||
            toHex(fnv1a(*key + '\n' + payload)) != hash_hex) {
            ++stats.malformed;
            continue;
        }
        auto result = decodeResult(payload);
        if (!result) {
            ++stats.malformed;
            continue;
        }
        into[*key] =
            std::make_shared<const RunResult>(std::move(*result));
        ++stats.loaded;
    }
    return stats;
}

bool
ResultJournal::append(const std::string &key, const RunResult &result)
{
    if (!ok_ || key.empty() || !serializable(result))
        return false;
    const std::string payload = encodeResult(result);
    out_ << "R " << toHex(fnv1a(key + '\n' + payload)) << ' '
         << escapeString(key) << ' ' << payload << '\n';
    out_.flush();
    if (!out_.good()) {
        warn("journal '", path_, "': append failed; journal disabled");
        ok_ = false;
        return false;
    }
    return true;
}

} // namespace pccsim::sim
