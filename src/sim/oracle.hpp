/**
 * @file
 * Differential oracle for the optimized translation path.
 *
 * PR 2 rebuilt the per-access hot path around aggressive shortcuts
 * (16-byte sentinel-packed TLB entries, MRU-way hints, the per-core
 * last-translation cache). Nothing independently proved that the fast
 * path still computes the *same answer* as a naive implementation —
 * regression tests only compare the fast path against itself. The
 * oracle closes that gap: a deliberately simple, obviously-correct
 * reference model (straight set-associative lookup over std::map-backed
 * tables, true LRU by an explicit stamp, no hints, no packing, no
 * fast paths) runs in lockstep with the real System and reports the
 * first divergence with a replayable access index.
 *
 * Checking granularity: the reference model must observe *every*
 * access to keep its TLB state in sync, so the model update always
 * runs. `sample_every` controls how often the per-access field compare
 * (hit level, mapping size) fires; between samples the end-of-run
 * counter audit (finish()) still catches any divergence, just without
 * a per-access index. Use sample_every = 1 (full lockstep) in debug
 * runs and a larger period in release timing runs.
 *
 * The oracle is result-neutral by construction: it only ever reads the
 * event stream and throws OracleError on divergence — it never changes
 * a RunResult. That is why OracleConfig is excluded from the runner's
 * memo key (sim/runner.cpp specKey).
 */

#pragma once

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "mem/paging.hpp"
#include "tlb/geometry.hpp"
#include "tlb/hierarchy.hpp"
#include "util/types.hpp"

namespace pccsim::sim {

/** Lockstep-checking configuration (off by default). */
struct OracleConfig
{
    bool enabled = false;

    /**
     * Compare real vs. reference outcome on every Nth access (1 =
     * full lockstep). The reference model updates on every access
     * regardless — only the compare is sampled.
     */
    u64 sample_every = 1;

    /**
     * The default compare period a harness should use when the user
     * asks for `--oracle` without a value: full lockstep in debug
     * builds, sampled in release.
     */
    static constexpr u64
    defaultSampleEvery()
    {
#ifdef NDEBUG
        return 64;
#else
        return 1;
#endif
    }
};

/** Everything needed to replay and diagnose one divergence. */
struct OracleDivergence
{
    u64 access_index = 0; //!< accesses the oracle had seen (replayable)
    u32 core = 0;
    Addr vaddr = 0;
    std::string detail;

    std::string toString() const;
};

/** Thrown by the DiffChecker at the first detected divergence. */
class OracleError : public std::runtime_error
{
  public:
    explicit OracleError(OracleDivergence divergence);

    const OracleDivergence &divergence() const { return divergence_; }

  private:
    OracleDivergence divergence_;
};

/**
 * Reference set-associative structure: std::map-backed sets, explicit
 * LRU stamps, linear victim scan. No MRU hints, no sentinel packing —
 * every decision is spelled out. Replacement behavior is equivalent to
 * tlb::SetAssocTlb by construction: true LRU over valid entries with
 * empty slots filled first.
 */
class RefSetAssoc
{
  public:
    explicit RefSetAssoc(tlb::TlbParams params);

    /** Probe; refreshes the LRU stamp on hit. */
    bool lookup(Vpn vpn);

    /** Lookup-or-insert (the hierarchy's combined access()). */
    bool access(Vpn vpn);

    /** Insert, evicting the set's LRU entry when full. */
    void insert(Vpn vpn);

    /** Drop every entry with vpn in [lo, hi); returns count. */
    u64 invalidateRange(Vpn lo, Vpn hi);

    u64 validCount() const;

  private:
    u64 setIndexOf(Vpn vpn) const { return vpn % sets_; }

    u32 sets_;
    u32 ways_;
    u64 clock_ = 0;
    /** set index -> (vpn -> LRU stamp). */
    std::map<u64, std::map<Vpn, u64>> sets_map_;
};

/**
 * Reference two-level TLB hierarchy mirroring tlb::TlbHierarchy's
 * semantics (split L1s per page size, unified size-keyed L2, victim
 * refill of L1 on an L2 hit) with none of its optimizations.
 */
class RefTlbHierarchy
{
  public:
    explicit RefTlbHierarchy(const tlb::TlbGeometry &geometry);

    tlb::HitLevel access(Addr vaddr, mem::PageSize size);
    void fill(Addr vaddr, mem::PageSize size);
    void shootdown(Addr base, u64 bytes);

    /** Account an access served by the System's last-translation
     *  cache: by contract an L1 hit whose stamp refresh cannot change
     *  relative recency (the page is MRU on this core). Returns false
     *  when the reference L1 does not actually hold the page. */
    bool noteRepeatL1Hit(Addr vaddr, mem::PageSize size);

    u64 accesses() const { return accesses_; }
    u64 l1Hits() const { return l1_hits_; }
    u64 l2Hits() const { return l2_hits_; }
    u64 walks() const { return walks_; }

  private:
    bool l2Holds(mem::PageSize size) const;
    static Vpn l2Key(Vpn vpn, mem::PageSize size);
    RefSetAssoc &l1Of(mem::PageSize size);

    tlb::TlbGeometry geometry_;
    RefSetAssoc l1_4k_;
    RefSetAssoc l1_2m_;
    RefSetAssoc l1_1g_;
    RefSetAssoc l2_;
    u64 accesses_ = 0;
    u64 l1_hits_ = 0;
    u64 l2_hits_ = 0;
    u64 walks_ = 0;
};

/**
 * Runs the reference model in lockstep with the real System.
 *
 * The System forwards every translation-relevant event (normal access,
 * last-translation-cache hit, fault fill, shootdown); the checker
 * replays it through the reference hierarchy plus a shadow mapping-size
 * table and throws OracleError at the first divergence. The shadow
 * table additionally enforces the cross-layer contract that a page's
 * mapping size may only change across a shootdown.
 */
class DiffChecker
{
  public:
    DiffChecker(OracleConfig config, const tlb::TlbGeometry &geometry,
                u32 num_cores);

    /** A normal translated access: real outcome vs. reference. */
    void onAccess(u32 core, Pid pid, Addr vaddr, mem::PageSize real_size,
                  tlb::HitLevel real_level);

    /** An access served by the per-core last-translation cache. */
    void onLtcAccess(u32 core, Pid pid, Addr vaddr);

    /** A fault whose handler installed `filled` and filled the TLB. */
    void onFault(u32 core, Pid pid, Addr vaddr, mem::PageSize filled);

    /** Shootdown of [base, base + bytes) across every core. */
    void onShootdown(Addr base, u64 bytes);

    /**
     * End-of-run audit of one core's aggregate TLB counters against
     * the reference model. Catches divergences that slipped between
     * sampled compares.
     */
    void finish(u32 core, u64 real_accesses, u64 real_l1_hits,
                u64 real_l2_hits, u64 real_walks);

    u64 accessesSeen() const { return accesses_seen_; }
    u64 comparesDone() const { return compares_done_; }

  private:
    [[noreturn]] void diverge(u32 core, Addr vaddr, std::string detail);
    bool compareDue();

    OracleConfig config_;
    std::vector<RefTlbHierarchy> cores_;
    /**
     * Shadow mapping size per 2MB region (region VPNs are globally
     * unique: process heaps occupy disjoint address ranges). Learned
     * from faults and first accesses, erased on shootdown, and
     * required to stay stable in between.
     */
    std::map<Vpn, mem::PageSize> region_size_;
    u64 accesses_seen_ = 0;
    u64 compares_done_ = 0;
};

} // namespace pccsim::sim
