/**
 * @file
 * Crash-consistent on-disk memoization journal for the runner.
 *
 * A multi-hour sweep that dies (crash, OOM-kill, SIGKILL) used to lose
 * every completed simulation because the runner's memo lives in
 * memory. The journal persists each completed RunResult keyed by its
 * canonical specKey so a restarted sweep replays instantly from disk.
 *
 * Format (line-oriented text, one file per journal):
 *
 *     pccsim-journal v1
 *     R <fnv64-hex> <escaped-key> <payload>
 *     R ...
 *
 * The header line is created atomically (write temp file, rename into
 * place) so a concurrent reader never sees a header-less journal.
 * Records are appended and flushed one-by-one as jobs complete — after
 * a SIGKILL the journal holds every finished job plus at most one
 * truncated tail line. The loader verifies a 64-bit FNV-1a hash over
 * `key\npayload` per record and silently skips any malformed/truncated
 * line (counted, not fatal), so a crashed journal is always readable.
 *
 * Versioning: the header names the format version. v1 covers every
 * RunResult field except the telemetry report (interval series, event
 * traces and attribution tables are deliberately not round-tripped —
 * results carrying telemetry are skipped at append and re-simulated on
 * resume). An unknown version disables the journal with a warning
 * rather than guessing: stale results silently decoded under changed
 * semantics would defeat the whole point of a correctness net.
 */

#pragma once

#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "sim/results.hpp"

namespace pccsim::sim {

class ResultJournal
{
  public:
    static constexpr const char *kHeader = "pccsim-journal v1";

    /**
     * Open (creating if absent) the journal at `path`. On a version
     * mismatch or I/O failure the journal becomes a no-op: ok() turns
     * false, load() yields nothing, append() refuses.
     */
    explicit ResultJournal(std::string path);

    bool ok() const { return ok_; }
    const std::string &path() const { return path_; }

    struct LoadStats
    {
        u64 loaded = 0;    //!< records decoded and handed to the caller
        u64 malformed = 0; //!< truncated/corrupt lines skipped
    };

    /** Read every valid record into `into` (later keys overwrite). */
    LoadStats
    load(std::map<std::string, std::shared_ptr<const RunResult>> &into);

    /**
     * Append one completed result; flushed before returning so a crash
     * right after loses nothing. Returns false (and writes nothing)
     * for unserializable results (attached telemetry), an empty key,
     * or a journal that is not ok().
     */
    bool append(const std::string &key, const RunResult &result);

    /** Can this result be round-tripped through the v1 format? */
    static bool serializable(const RunResult &result);

    static std::string encodeResult(const RunResult &result);
    static std::optional<RunResult>
    decodeResult(const std::string &payload);

  private:
    std::string path_;
    bool ok_ = false;
    std::ofstream out_;
};

} // namespace pccsim::sim
