#include "sim/runner.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <numeric>
#include <sstream>

#include "util/log.hpp"

namespace pccsim::sim {

namespace {

u64
nowNanos()
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

std::string
to_string(JobFail fail)
{
    switch (fail) {
      case JobFail::None: return "none";
      case JobFail::Timeout: return "timeout";
      case JobFail::Stalled: return "stalled";
      case JobFail::Diverged: return "diverged";
      case JobFail::Error: return "error";
    }
    return "?";
}

std::string
specKey(const ExperimentSpec &spec)
{
    if (spec.tweak && spec.tweak_key.empty())
        return {};
    std::ostringstream os;
    os.precision(17);
    const auto &w = spec.workload;
    os << w.name << '|' << static_cast<int>(w.scale) << '|'
       << static_cast<int>(w.network) << '|' << w.dbg_sorted << '|'
       << w.seed << '|' << spec.lanes << '|'
       << static_cast<int>(spec.policy) << '|' << spec.cap_percent
       << '|' << spec.frag_fraction;
    const auto &p = spec.pcc_policy;
    os << '|' << p.regions_to_promote << '|' << static_cast<int>(p.order);
    for (Pid pid : p.bias_pids)
        os << ',' << pid;
    os << '|' << p.allow_compaction << p.demote_on_pressure << '|'
       << p.min_frequency << '|' << p.promote_1g << '|' << p.ratio_1g;
    // Telemetry settings change the attached report (part of RunResult
    // equality), so they must be part of the memo identity too.
    const auto &t = spec.telemetry;
    os << '|' << t.enabled << t.trace_events << t.attribution << t.audit
       << '|' << t.top_k << '|' << t.max_events << '|'
       << t.attribution_regions << '|' << t.max_audit_records;
    // Appended ONLY when enabled so every pre-histogram spec keeps the
    // exact key it had (journals and memos stay valid).
    if (t.histograms)
        os << "|hist=" << t.exemplar_k;
    // Fault schedules, invariant sweeps, interval overrides and planted
    // mutations all change results; the oracle (result-neutral) does
    // not and is deliberately absent.
    const auto &f = spec.faults;
    os << '|' << f.alloc_fail_base << ',' << f.alloc_fail_huge << ','
       << f.alloc_fail_1g << ',' << f.compaction_fail << ','
       << f.compaction_partial << ',' << f.partial_move_limit << ','
       << f.shootdown_storm << ',' << f.shootdown_storm_cycles << ','
       << f.shock_fraction << ',' << f.seed_salt;
    for (u64 shock : f.shock_intervals)
        os << ',' << shock;
    os << '|' << spec.check_invariants << '|' << spec.interval_accesses
       << '|' << static_cast<int>(spec.mutation);
    // Sampling is NOT result-neutral (estimates vs exact): a sampled
    // run and an exact run of the same workload must never share a
    // memo entry, so W:F is part of the identity.
    os << "|sample=" << spec.sampling.window << ':'
       << spec.sampling.fastforward;
    os << '|' << spec.tweak_key;
    // Registry selectors: appended ONLY when set, so every legacy spec
    // keeps the exact key it had before the registry existed (bare
    // legacy names canonicalize onto the enum and leave these empty).
    // The distinct `policy=`/`hw=` markers keep `pcc:promote=8` from
    // ever colliding with a tweak_key or another selector variant.
    if (!spec.policy_str.empty())
        os << "|policy=" << spec.policy_str;
    if (!spec.hw.empty())
        os << "|hw=" << spec.hw;
    return os.str();
}

/** Per-guarded-job heartbeat shared between worker and watchdog. */
struct Runner::Supervision
{
    std::atomic<u64> progress{0};    //!< simulated accesses so far
    std::atomic<bool> cancel{false}; //!< watchdog -> worker
    std::atomic<u64> started_ns{0};  //!< attempt start; 0 = not running
    std::atomic<u8> verdict{0};      //!< 0 none, 1 deadline, 2 stall
    std::atomic<bool> done{false};

    // Watchdog-private scan state (single watchdog thread).
    u64 last_progress = ~0ull;
    u64 last_change_ns = 0;
};

Runner::Runner(u32 jobs) : Runner(RunnerOptions{.jobs = jobs}) {}

Runner::Runner(RunnerOptions options)
    : jobs_(options.jobs == 0 ? util::ThreadPool::hardwareJobs()
                              : options.jobs),
      options_(std::move(options))
{
    if (jobs_ > 1)
        pool_ = std::make_unique<util::ThreadPool>(jobs_);
    if (!options_.journal_path.empty()) {
        journal_ = std::make_unique<ResultJournal>(options_.journal_path);
        const auto loaded = journal_->load(memo_);
        stats_.journal_loaded = loaded.loaded;
        stats_.journal_malformed = loaded.malformed;
    }
}

Runner::~Runner() = default;

Runner::Stats
Runner::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats snapshot = stats_;
    snapshot.worker_busy_nanos.clear();
    snapshot.worker_busy_nanos.reserve(worker_busy_.size());
    for (const auto &[tid, busy] : worker_busy_)
        snapshot.worker_busy_nanos.push_back(busy);
    std::sort(snapshot.worker_busy_nanos.begin(),
              snapshot.worker_busy_nanos.end(), std::greater<u64>());
    return snapshot;
}

size_t
Runner::memoSize() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return memo_.size();
}

std::shared_ptr<const RunResult>
Runner::simulate(const ExperimentSpec &spec, const std::string &key,
                 Supervision *supervision)
{
    const u64 t0 = nowNanos();
    auto result = std::make_shared<const RunResult>(
        runOne(spec, supervision ? &supervision->progress : nullptr,
               supervision ? &supervision->cancel : nullptr));
    const u64 elapsed = nowNanos() - t0;
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.simulated;
    stats_.total_accesses += result->total_accesses;
    stats_.sim_nanos += elapsed;
    if (result->total_accesses > 0) {
        stats_.run_busy_ns_per_access.record(elapsed /
                                             result->total_accesses);
    }
    worker_busy_[std::this_thread::get_id()] += elapsed;
    if (journal_ && !key.empty()) {
        if (journal_->append(key, *result))
            ++stats_.journal_appends;
        else
            ++stats_.journal_skipped;
    }
    return result;
}

JobOutcome
Runner::runGuarded(const ExperimentSpec &spec, const std::string &key,
                   Supervision *supervision)
{
    JobOutcome outcome;
    for (u32 attempt = 1;; ++attempt) {
        outcome.attempts = attempt;
        if (supervision) {
            supervision->progress.store(0, std::memory_order_relaxed);
            supervision->verdict.store(0, std::memory_order_relaxed);
            supervision->cancel.store(false, std::memory_order_relaxed);
            // The watchdog anchors its stall window at the later of
            // started_ns and the last progress change, so bumping the
            // start resets the window for this attempt.
            supervision->started_ns.store(nowNanos());
        }
        try {
            outcome.result = simulate(spec, key, supervision);
            outcome.fail = JobFail::None;
            outcome.message.clear();
            break;
        } catch (const OracleError &e) {
            outcome.fail = JobFail::Diverged;
            outcome.message = e.what();
            break;
        } catch (const CancelledError &e) {
            const u8 verdict =
                supervision ? supervision->verdict.load() : u8{0};
            outcome.fail =
                verdict == 2 ? JobFail::Stalled : JobFail::Timeout;
            outcome.message = e.what();
            break;
        } catch (const std::exception &e) {
            if (attempt > options_.max_retries) {
                outcome.fail = JobFail::Error;
                outcome.message = e.what();
                break;
            }
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.retries;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(
                options_.retry_backoff_ms << (attempt - 1)));
        } catch (...) {
            outcome.fail = JobFail::Error;
            outcome.message = "unknown exception";
            break;
        }
    }
    if (supervision)
        supervision->done.store(true);
    return outcome;
}

std::shared_ptr<const RunResult>
Runner::run(const ExperimentSpec &spec)
{
    return runMany({spec}).front();
}

std::vector<std::shared_ptr<const RunResult>>
Runner::runMany(const std::vector<ExperimentSpec> &specs)
{
    const u64 wall_t0 = nowNanos();
    std::vector<std::shared_ptr<const RunResult>> out(specs.size());
    std::vector<std::string> keys(specs.size());
    // Indices that need a simulation; for duplicate keys inside the
    // batch only the first occurrence simulates (the batch owner).
    std::vector<size_t> to_run;
    std::map<std::string, size_t> batch_owner;
    std::vector<std::pair<size_t, size_t>> followers;

    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.requested += specs.size();
        for (size_t i = 0; i < specs.size(); ++i) {
            keys[i] = specKey(specs[i]);
            if (keys[i].empty()) {
                to_run.push_back(i); // unkeyed: always simulate
                continue;
            }
            if (auto it = memo_.find(keys[i]); it != memo_.end()) {
                out[i] = it->second;
                ++stats_.memo_hits;
                continue;
            }
            if (auto it = batch_owner.find(keys[i]);
                it != batch_owner.end()) {
                followers.emplace_back(i, it->second);
                ++stats_.memo_hits;
                continue;
            }
            batch_owner.emplace(keys[i], i);
            to_run.push_back(i);
        }
    }

    if (!to_run.empty()) {
        std::vector<std::shared_ptr<const RunResult>> results;
        if (pool_) {
            results = pool_->parallelMap(to_run, [&](const size_t &i) {
                return simulate(specs[i], keys[i], nullptr);
            });
        } else {
            results.reserve(to_run.size());
            for (size_t i : to_run)
                results.push_back(simulate(specs[i], keys[i], nullptr));
        }
        std::lock_guard<std::mutex> lock(mutex_);
        for (size_t n = 0; n < to_run.size(); ++n) {
            const size_t i = to_run[n];
            out[i] = results[n];
            if (!keys[i].empty())
                memo_.emplace(keys[i], results[n]);
        }
    }
    for (const auto &[follower, owner] : followers)
        out[follower] = out[owner];
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.wall_nanos += nowNanos() - wall_t0;
    }
    return out;
}

std::vector<JobOutcome>
Runner::runManyGuarded(const std::vector<ExperimentSpec> &specs)
{
    const u64 wall_t0 = nowNanos();
    std::vector<JobOutcome> out(specs.size());
    std::vector<std::string> keys(specs.size());
    std::vector<size_t> to_run;
    std::map<std::string, size_t> batch_owner;
    std::vector<std::pair<size_t, size_t>> followers;

    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.requested += specs.size();
        for (size_t i = 0; i < specs.size(); ++i) {
            keys[i] = specKey(specs[i]);
            if (keys[i].empty()) {
                to_run.push_back(i);
                continue;
            }
            if (auto it = memo_.find(keys[i]); it != memo_.end()) {
                out[i].result = it->second;
                ++stats_.memo_hits;
                continue;
            }
            if (auto it = batch_owner.find(keys[i]);
                it != batch_owner.end()) {
                followers.emplace_back(i, it->second);
                ++stats_.memo_hits;
                continue;
            }
            batch_owner.emplace(keys[i], i);
            to_run.push_back(i);
        }
    }

    const bool watched =
        options_.deadline_ms > 0 || options_.stall_ms > 0;
    std::vector<std::unique_ptr<Supervision>> supervisions;
    if (watched) {
        supervisions.reserve(to_run.size());
        for (size_t n = 0; n < to_run.size(); ++n)
            supervisions.push_back(std::make_unique<Supervision>());
    }

    std::atomic<bool> watchdog_stop{false};
    std::thread watchdog;
    if (watched && !to_run.empty()) {
        const u64 poll_ms = std::max<u64>(1, options_.watchdog_poll_ms);
        watchdog = std::thread([this, &supervisions, &watchdog_stop,
                                poll_ms] {
            while (!watchdog_stop.load(std::memory_order_relaxed)) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(poll_ms));
                const u64 now = nowNanos();
                for (auto &sup_ptr : supervisions) {
                    Supervision &sup = *sup_ptr;
                    if (sup.done.load(std::memory_order_relaxed))
                        continue;
                    const u64 started = sup.started_ns.load();
                    if (started == 0)
                        continue; // attempt not running yet
                    if (options_.deadline_ms > 0 &&
                        now - started >
                            options_.deadline_ms * 1'000'000ull) {
                        sup.verdict.store(1);
                        sup.cancel.store(true);
                        continue;
                    }
                    const u64 progress =
                        sup.progress.load(std::memory_order_relaxed);
                    if (progress != sup.last_progress) {
                        sup.last_progress = progress;
                        sup.last_change_ns = now;
                        continue;
                    }
                    const u64 anchor =
                        std::max(sup.last_change_ns, started);
                    if (options_.stall_ms > 0 &&
                        now - anchor >
                            options_.stall_ms * 1'000'000ull) {
                        sup.verdict.store(2);
                        sup.cancel.store(true);
                    }
                }
            }
        });
    }

    if (!to_run.empty()) {
        std::vector<size_t> order(to_run.size());
        std::iota(order.begin(), order.end(), size_t{0});
        const auto task = [&](size_t n) {
            return runGuarded(specs[to_run[n]], keys[to_run[n]],
                              watched ? supervisions[n].get() : nullptr);
        };
        std::vector<JobOutcome> results;
        if (pool_) {
            // runGuarded never throws, so the map cannot fail.
            results = pool_->parallelMap(
                order, [&](const size_t &n) { return task(n); });
        } else {
            results.reserve(order.size());
            for (size_t n : order)
                results.push_back(task(n));
        }
        std::lock_guard<std::mutex> lock(mutex_);
        for (size_t n = 0; n < to_run.size(); ++n) {
            const size_t i = to_run[n];
            out[i] = std::move(results[n]);
            if (out[i].ok()) {
                if (!keys[i].empty())
                    memo_.emplace(keys[i], out[i].result);
            } else {
                ++stats_.quarantined;
            }
        }
    }

    if (watchdog.joinable()) {
        watchdog_stop.store(true);
        watchdog.join();
    }

    // Followers inherit their owner's outcome, quarantine included.
    for (const auto &[follower, owner] : followers)
        out[follower] = out[owner];
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.wall_nanos += nowNanos() - wall_t0;
    }
    return out;
}

namespace {

std::mutex g_runner_mutex;
std::unique_ptr<Runner> g_runner;
std::atomic<u64> g_memo_discards{0};

/** Replace the global runner, accounting a discarded non-empty memo. */
void
replaceGlobalLocked(std::unique_ptr<Runner> next)
{
    if (g_runner) {
        const size_t entries = g_runner->memoSize();
        if (entries > 0) {
            g_memo_discards.fetch_add(1);
            warn("runner.memo_discards: reconfiguring the global "
                 "runner discarded ",
                 entries, " memoized result(s)");
        }
    }
    g_runner = std::move(next);
}

} // namespace

Runner &
Runner::global()
{
    std::lock_guard<std::mutex> lock(g_runner_mutex);
    if (!g_runner)
        g_runner = std::make_unique<Runner>(0);
    return *g_runner;
}

void
Runner::setGlobalJobs(u32 jobs)
{
    std::lock_guard<std::mutex> lock(g_runner_mutex);
    replaceGlobalLocked(std::make_unique<Runner>(jobs));
}

void
Runner::setGlobalOptions(const RunnerOptions &options)
{
    std::lock_guard<std::mutex> lock(g_runner_mutex);
    replaceGlobalLocked(std::make_unique<Runner>(options));
}

u64
Runner::globalMemoDiscards()
{
    return g_memo_discards.load();
}

} // namespace pccsim::sim
