#include "sim/runner.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <sstream>

namespace pccsim::sim {

namespace {

u64
nowNanos()
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

std::string
specKey(const ExperimentSpec &spec)
{
    if (spec.tweak && spec.tweak_key.empty())
        return {};
    std::ostringstream os;
    os.precision(17);
    const auto &w = spec.workload;
    os << w.name << '|' << static_cast<int>(w.scale) << '|'
       << static_cast<int>(w.network) << '|' << w.dbg_sorted << '|'
       << w.seed << '|' << spec.lanes << '|'
       << static_cast<int>(spec.policy) << '|' << spec.cap_percent
       << '|' << spec.frag_fraction;
    const auto &p = spec.pcc_policy;
    os << '|' << p.regions_to_promote << '|' << static_cast<int>(p.order);
    for (Pid pid : p.bias_pids)
        os << ',' << pid;
    os << '|' << p.allow_compaction << p.demote_on_pressure << '|'
       << p.min_frequency << '|' << p.promote_1g << '|' << p.ratio_1g;
    // Telemetry settings change the attached report (part of RunResult
    // equality), so they must be part of the memo identity too.
    const auto &t = spec.telemetry;
    os << '|' << t.enabled << t.trace_events << t.attribution << t.audit
       << '|' << t.top_k << '|' << t.max_events << '|'
       << t.attribution_regions << '|' << t.max_audit_records;
    os << '|' << spec.tweak_key;
    return os.str();
}

Runner::Runner(u32 jobs)
    : jobs_(jobs == 0 ? util::ThreadPool::hardwareJobs() : jobs)
{
    if (jobs_ > 1)
        pool_ = std::make_unique<util::ThreadPool>(jobs_);
}

Runner::~Runner() = default;

Runner::Stats
Runner::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats snapshot = stats_;
    snapshot.worker_busy_nanos.clear();
    snapshot.worker_busy_nanos.reserve(worker_busy_.size());
    for (const auto &[tid, busy] : worker_busy_)
        snapshot.worker_busy_nanos.push_back(busy);
    std::sort(snapshot.worker_busy_nanos.begin(),
              snapshot.worker_busy_nanos.end(), std::greater<u64>());
    return snapshot;
}

std::shared_ptr<const RunResult>
Runner::simulate(const ExperimentSpec &spec)
{
    const u64 t0 = nowNanos();
    auto result = std::make_shared<const RunResult>(runOne(spec));
    const u64 elapsed = nowNanos() - t0;
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.simulated;
    stats_.total_accesses += result->total_accesses;
    stats_.sim_nanos += elapsed;
    worker_busy_[std::this_thread::get_id()] += elapsed;
    return result;
}

std::shared_ptr<const RunResult>
Runner::run(const ExperimentSpec &spec)
{
    return runMany({spec}).front();
}

std::vector<std::shared_ptr<const RunResult>>
Runner::runMany(const std::vector<ExperimentSpec> &specs)
{
    const u64 wall_t0 = nowNanos();
    std::vector<std::shared_ptr<const RunResult>> out(specs.size());
    std::vector<std::string> keys(specs.size());
    // Indices that need a simulation; for duplicate keys inside the
    // batch only the first occurrence simulates (the batch owner).
    std::vector<size_t> to_run;
    std::map<std::string, size_t> batch_owner;
    std::vector<std::pair<size_t, size_t>> followers;

    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.requested += specs.size();
        for (size_t i = 0; i < specs.size(); ++i) {
            keys[i] = specKey(specs[i]);
            if (keys[i].empty()) {
                to_run.push_back(i); // unkeyed: always simulate
                continue;
            }
            if (auto it = memo_.find(keys[i]); it != memo_.end()) {
                out[i] = it->second;
                ++stats_.memo_hits;
                continue;
            }
            if (auto it = batch_owner.find(keys[i]);
                it != batch_owner.end()) {
                followers.emplace_back(i, it->second);
                ++stats_.memo_hits;
                continue;
            }
            batch_owner.emplace(keys[i], i);
            to_run.push_back(i);
        }
    }

    if (!to_run.empty()) {
        std::vector<std::shared_ptr<const RunResult>> results;
        if (pool_) {
            results = pool_->parallelMap(
                to_run, [&](const size_t &i) { return simulate(specs[i]); });
        } else {
            results.reserve(to_run.size());
            for (size_t i : to_run)
                results.push_back(simulate(specs[i]));
        }
        std::lock_guard<std::mutex> lock(mutex_);
        for (size_t n = 0; n < to_run.size(); ++n) {
            const size_t i = to_run[n];
            out[i] = results[n];
            if (!keys[i].empty())
                memo_.emplace(keys[i], results[n]);
        }
    }
    for (const auto &[follower, owner] : followers)
        out[follower] = out[owner];
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.wall_nanos += nowNanos() - wall_t0;
    }
    return out;
}

namespace {

std::mutex g_runner_mutex;
std::unique_ptr<Runner> g_runner;

} // namespace

Runner &
Runner::global()
{
    std::lock_guard<std::mutex> lock(g_runner_mutex);
    if (!g_runner)
        g_runner = std::make_unique<Runner>(0);
    return *g_runner;
}

void
Runner::setGlobalJobs(u32 jobs)
{
    std::lock_guard<std::mutex> lock(g_runner_mutex);
    g_runner = std::make_unique<Runner>(jobs);
}

} // namespace pccsim::sim
