#include "sim/fault_injector.hpp"

#include "mem/paging.hpp"

namespace pccsim::sim {

namespace {

/** Derive one stream seed per fault class from (seed, salt, class). */
u64
streamSeed(u64 run_seed, u64 salt, u64 stream)
{
    u64 state = run_seed ^ (salt * 0x9e3779b97f4a7c15ull) ^
                (stream << 32);
    return splitmix64(state);
}

} // namespace

FaultInjector::FaultInjector(const FaultConfig &config, u64 run_seed)
    : config_(config),
      alloc_rng_(streamSeed(run_seed, config.seed_salt, 1)),
      compact_rng_(streamSeed(run_seed, config.seed_salt, 2)),
      storm_rng_(streamSeed(run_seed, config.seed_salt, 3)),
      shock_rng_(streamSeed(run_seed, config.seed_salt, 4))
{
}

bool
FaultInjector::allowAlloc(unsigned order)
{
    double p = 0.0;
    if (order == 0)
        p = config_.alloc_fail_base;
    else if (order == mem::kOrder2M)
        p = config_.alloc_fail_huge;
    else if (order == mem::kOrder1G)
        p = config_.alloc_fail_1g;
    // Draw on every attempt (chance(0) never fires but still advances
    // the stream): the schedule then depends only on the *sequence* of
    // allocation attempts, not on which orders were configured to fail.
    if (!alloc_rng_.chance(p))
        return true;
    ++alloc_fails_;
    if (tracer_) {
        tracer_->record(telemetry::EventKind::AllocFailInjected, 0, 0,
                        mem::kBytes4K << order, order);
    }
    return false;
}

u32
FaultInjector::compactionMovesAllowed()
{
    // Draw both decisions every attempt so the stream position is
    // independent of the configured probabilities.
    const bool hard = compact_rng_.chance(config_.compaction_fail);
    const bool partial = compact_rng_.chance(config_.compaction_partial);
    if (hard) {
        ++compaction_fails_;
        if (tracer_) {
            tracer_->record(
                telemetry::EventKind::CompactionFailInjected, 0, 0, 0, 0);
        }
        return 0;
    }
    if (partial) {
        ++compaction_fails_;
        if (tracer_) {
            // arg = moves allowed before the partial abort.
            tracer_->record(telemetry::EventKind::CompactionFailInjected,
                            0, 0, 0, config_.partial_move_limit);
        }
        return config_.partial_move_limit;
    }
    return mem::PhysicalMemory::kUnlimitedMoves;
}

Cycles
FaultInjector::shootdownDelay()
{
    if (config_.shootdown_storm <= 0.0)
        return 0;
    if (!storm_rng_.chance(config_.shootdown_storm))
        return 0;
    ++storms_;
    if (tracer_) {
        tracer_->record(telemetry::EventKind::ShootdownStorm, 0, 0, 0,
                        config_.shootdown_storm_cycles);
    }
    return config_.shootdown_storm_cycles;
}

bool
FaultInjector::shockDue(u64 interval) const
{
    for (u64 at : config_.shock_intervals)
        if (at == interval)
            return true;
    return false;
}

u64
FaultInjector::applyShock(mem::PhysicalMemory &phys)
{
    ++shocks_;
    const u64 pinned = phys.fragment(config_.shock_fraction, shock_rng_);
    if (tracer_) {
        tracer_->record(telemetry::EventKind::FragShock, 0, 0,
                        pinned * mem::kBytes2M, pinned);
    }
    return pinned;
}

} // namespace pccsim::sim
