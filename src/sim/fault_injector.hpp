/**
 * @file
 * Deterministic fault injection for robustness testing.
 *
 * The injector models the hostile conditions a real huge-page subsystem
 * must survive: allocation failures under memory pressure, compaction
 * attempts that fail or abort mid-migration, TLB-shootdown storms that
 * inflate invalidation latency, and sudden fragmentation shocks
 * mid-run. All decisions flow through seeded RNG streams derived from
 * the run seed, so a given (seed, FaultConfig) pair reproduces the
 * exact same fault schedule bit-for-bit — the determinism contract the
 * rest of the simulator already honors.
 *
 * Each fault class draws from its own independent stream. That way
 * enabling one class (say, shootdown storms) never perturbs the
 * decisions of another, and experiments stay comparable as injection
 * settings vary.
 */

#pragma once

#include <vector>

#include "mem/phys_mem.hpp"
#include "telemetry/trace.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace pccsim::sim {

/** What to inject and how often. All probabilities are per-event. */
struct FaultConfig
{
    // ---- allocation failures (per attempted allocation) ----
    double alloc_fail_base = 0.0; //!< order-0 (4KB) allocations
    double alloc_fail_huge = 0.0; //!< order-9 (2MB) allocations
    double alloc_fail_1g = 0.0;   //!< order-18 (1GB) allocations

    // ---- compaction failures (per compactOneBlock attempt) ----
    double compaction_fail = 0.0;    //!< attempt fails outright
    double compaction_partial = 0.0; //!< attempt aborts mid-migration
    u32 partial_move_limit = 8;      //!< moves before a partial abort

    // ---- shootdown storms (per shootdown) ----
    double shootdown_storm = 0.0;        //!< probability of a storm
    Cycles shootdown_storm_cycles = 50'000; //!< extra latency when hit

    // ---- scheduled fragmentation shocks ----
    /** Policy intervals at which to fragment physical memory again. */
    std::vector<u64> shock_intervals;
    /** Fraction of 2MB blocks each shock pins (Sec. 5.1.1 method). */
    double shock_fraction = 0.25;

    /** Salt mixed into the run seed for all injection streams. */
    u64 seed_salt = 0xfa17;

    /** Is any injection enabled at all? */
    bool
    any() const
    {
        return alloc_fail_base > 0.0 || alloc_fail_huge > 0.0 ||
               alloc_fail_1g > 0.0 || compaction_fail > 0.0 ||
               compaction_partial > 0.0 || shootdown_storm > 0.0 ||
               !shock_intervals.empty();
    }
};

class FaultInjector
{
  public:
    /**
     * @param config What to inject.
     * @param run_seed The run's master seed; mixed with the salt so the
     *        schedule is a pure function of (seed, config).
     */
    FaultInjector(const FaultConfig &config, u64 run_seed);

    const FaultConfig &config() const { return config_; }
    bool active() const { return config_.any(); }

    /**
     * Allocation-gate decision for a buddy allocation of the given
     * order; false = this allocation fails (injected). Wire into
     * PhysicalMemory::setAllocGate.
     */
    bool allowAlloc(unsigned order);

    /**
     * Compaction-gate decision: moves the next compaction attempt may
     * perform. Wire into PhysicalMemory::setCompactionGate.
     */
    u32 compactionMovesAllowed();

    /** Extra latency to add to the next shootdown (0 = no storm). */
    Cycles shootdownDelay();

    /** Is a fragmentation shock scheduled for this interval? */
    bool shockDue(u64 interval) const;

    /** Execute a shock: pin fresh unmovable pages. Returns pins made. */
    u64 applyShock(mem::PhysicalMemory &phys);

    // ---- injection tallies (what actually fired) ----
    u64 allocFailsInjected() const { return alloc_fails_; }
    u64 compactionFailsInjected() const { return compaction_fails_; }
    u64 stormsInjected() const { return storms_; }
    u64 shocksApplied() const { return shocks_; }

    /**
     * Structured event tracing (null = off): each fault that actually
     * fires records one event, so traces show exactly where injected
     * hostility landed relative to the OS's reactions.
     */
    void setTracer(telemetry::EventTracer *tracer) { tracer_ = tracer; }

  private:
    FaultConfig config_;
    telemetry::EventTracer *tracer_ = nullptr;
    Rng alloc_rng_;
    Rng compact_rng_;
    Rng storm_rng_;
    Rng shock_rng_;
    u64 alloc_fails_ = 0;
    u64 compaction_fails_ = 0;
    u64 storms_ = 0;
    u64 shocks_ = 0;
};

} // namespace pccsim::sim
