/**
 * @file
 * The full-system simulator: per-core hardware (TLB hierarchy, page
 * walker + PWC, PCC unit, data caches), the OS model, and the lane
 * scheduler that interleaves workload access streams deterministically.
 *
 * Scheduling model: each job's lanes run on consecutive cores. Lanes
 * are pulled round-robin in small batches; a lane that yields a
 * Barrier parks until all live lanes of its job reach the barrier, at
 * which point every parked core's clock advances to the job-wide
 * maximum (modelling barrier wait) and lanes resume starting from the
 * job's first lane (so lane-0 post-barrier bookkeeping runs before any
 * other lane observes shared state).
 */

#pragma once

#include <memory>
#include <vector>

#include "cache/cache.hpp"
#include "mem/phys_mem.hpp"
#include "os/os.hpp"
#include "os/policy.hpp"
#include "pcc/pcc_unit.hpp"
#include "pt/walker.hpp"
#include "sim/config.hpp"
#include "sim/fault_injector.hpp"
#include "sim/results.hpp"
#include "telemetry/attribution.hpp"
#include "telemetry/audit.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/series.hpp"
#include "telemetry/tail.hpp"
#include "telemetry/trace.hpp"
#include "tenant/scheduler.hpp"
#include "tlb/hierarchy.hpp"
#include "workloads/workload.hpp"

namespace pccsim::sim {

class System : public os::PolicyContext
{
  public:
    /** One workload instance to run (its own process). */
    struct Job
    {
        workloads::Workload *workload = nullptr;
        u32 lanes = 1;
    };

    explicit System(SystemConfig config);
    ~System() override;

    /** Run the jobs to completion and report metrics. */
    RunResult run(std::vector<Job> jobs);

    /** Convenience: run one workload on `lanes` cores. */
    RunResult
    run(workloads::Workload &workload, u32 lanes = 1)
    {
        return run(std::vector<Job>{{&workload, lanes}});
    }

    // ---- os::PolicyContext ----
    os::Os &os() override { return *os_; }
    u32 numCores() const override { return config_.num_cores; }
    os::Process &processOnCore(CoreId core) override;
    pcc::PccUnit &pccUnit(CoreId core) override;
    void chargeCore(CoreId core, Cycles cycles) override;
    u64 intervalIndex() const override { return intervals_; }
    u64 accessesSoFar() const override { return total_accesses_; }
    telemetry::PromotionAuditLog *audit() override { return tel_audit_.get(); }

    const SystemConfig &config() const { return config_; }
    mem::PhysicalMemory *phys() { return phys_.get(); }

    /** Promotions recorded during run() when record_trace is set. */
    const os::PromotionTrace &recordedTrace() const { return recorded_; }

  private:
    struct CoreState
    {
        CoreState(const SystemConfig &cfg)
            : tlb(cfg.tlb), walker(cfg.pwc), pcc(cfg.pcc),
              dcache(cfg.cache)
        {
        }

        tlb::TlbHierarchy tlb;
        pt::Walker walker;
        pcc::PccUnit pcc;
        cache::CacheHierarchy dcache;
        Cycles cycles = 0;
        /** Cycles spent in page-table walks (sampling window stats). */
        Cycles walk_cycles = 0;
        u64 accesses = 0;
        u64 faults = 0;
        Pid pid = 0;
        u32 job = 0;
        u32 lane = 0;

        /**
         * Last-translated page on this core: [base, base + bytes).
         * bytes == 0 means invalid; cleared on every shootdown, since
         * promotions/demotions/migrations all flow through the
         * shootdown hook.
         */
        Addr last_page_base = 0;
        u64 last_page_bytes = 0;

        void
        noteTranslated(Addr vaddr, mem::PageSize size)
        {
            last_page_base = mem::pageBase(vaddr, size);
            last_page_bytes = mem::bytesOf(size);
        }
    };

    struct LaneState
    {
        // ---- batch engine ----
        /**
         * The lane's op buffer. Heap-allocated because the batchLane
         * coroutine captures a reference at creation: LaneState lives
         * in a vector whose relocations must not move the buffer.
         */
        std::unique_ptr<workloads::AccessBuffer> buf;
        Generator<workloads::BatchEnd> gen;
        u32 consumed = 0;          //!< ops of buf already simulated
        /** Drained buffer ends at a barrier not yet taken. */
        bool pending_barrier = false;
        /** Generator exhausted; buf holds its residual ops. */
        bool pending_eof = false;

        // ---- scalar engine (batch_engine = false) ----
        Generator<workloads::AccessOp> scalar_gen;

        CoreId core = 0;
        u32 job = 0;
        bool at_barrier = false;
        bool done = false;
    };

    /**
     * Per-job hardware counters in tenant mode. Cores are shared, so
     * the cumulative per-core counters mix tenants; instead each lane
     * turn snapshots its core's counters before and after and banks
     * the delta against the job that ran. In a 1-tenant run the core
     * is never shared and the tallies equal the per-core totals, which
     * is what keeps tenant-mode results bit-identical to the legacy
     * single-process path.
     */
    struct JobTally
    {
        u64 accesses = 0;
        u64 tlb_accesses = 0;
        u64 l1_hits = 0;
        u64 l2_hits = 0;
        u64 walks = 0;
        u64 faults = 0;
        u64 walker_refs = 0;
    };

    /**
     * Scheduling phase of a sampled run. Each detailed window is
     * split SMARTS-style: a warming half rebuilds the TLB/cache state
     * the fast-forward phase left stale (detailed simulation, not
     * measured), then the measured half feeds the estimators. Without
     * the warm-up every window opens on a cold TLB and the miss-rate
     * estimate inherits a systematic upward bias.
     */
    enum class SamplePhase : u8
    {
        Warming = 0,
        Measuring = 1,
        FastForward = 2,
    };

    /** Simulate one access on a core; returns its cycle cost. */
    Cycles doAccess(CoreState &core, os::Process &proc, Addr vaddr,
                    bool write);

    /**
     * Fast-forward one access: page tables, access bits, and (rate-
     * thinned) PCC candidate counters advance; TLBs, data caches, and
     * the walker do not. Charges the mean detailed-window cost so job
     * clocks stay on scale.
     */
    void doFastForward(CoreState &core, os::Process &proc, Addr vaddr);

    /** The per-op scheduling loop over Workload::lane() adapters. */
    void runScalarLoop(std::vector<Cycles> &job_wall,
                       std::vector<u32> &job_live, u32 total_lanes);

    /** The batch-buffer scheduling loop (with optional sampling). */
    void runBatchLoop(std::vector<Cycles> &job_wall,
                      std::vector<u32> &job_live, u32 total_lanes);

    /** Fire the interval machinery (policy, shocks, telemetry). */
    void onInterval(u32 total_lanes);

    /** Open a detailed window, starting with its warming half. */
    void beginSampleWindow();

    /** End of warm-up: snapshot the counters the window will delta. */
    void beginMeasurement();

    /** Close a completed detailed window and start fast-forwarding. */
    void closeSampleWindow();

    /** Compute RunResult::sampling from the accumulated windows. */
    SamplingStats sampleStats() const;

    u64 sumWalks() const;
    u64 sumWalkCycles() const;
    u64 sumTlbAccesses() const;
    u64 sumCycles() const;

    /** Charge page-table fetches of a walk through the data cache. */
    Cycles chargeWalkRefs(CoreState &core, const os::Process &proc,
                          Addr vaddr, unsigned refs, mem::PageSize size);

    /** Release a job's barrier if every live lane reached it. */
    void maybeReleaseBarrier(u32 job);

    /**
     * Tenant mode: make `lane`'s tenant current on its core before the
     * lane's turn. On an actual switch (another tenant held the core)
     * charges the context-switch cost, performs the switch-mode action
     * (flush vs ASID retag), and drops the last-translation cache —
     * the departing tenant's page, never valid for the incoming one.
     */
    void tenantClaim(const LaneState &lane);

    void installShootdownHook();
    void installFaultInjection();
    void installReclaimRanker();

    /**
     * Build the telemetry registry/sampler/tracer for this run (no-op
     * when config_.telemetry.enabled is false — every later telemetry
     * touch point is then a single null-pointer test).
     */
    void setupTelemetry(size_t num_jobs);

    /** Take one interval sample (churn, series, interval marker). */
    void sampleTelemetryInterval();

    /**
     * Record one detailed access into the tail recorder (call sites
     * guard on tel_tail_). Fast-forwarded accesses are never recorded:
     * they carry a synthetic mean charge, not a latency.
     */
    void recordTail(const CoreState &core, const os::Process &proc,
                    Addr vaddr, telemetry::TailOutcome outcome,
                    Cycles cost, Cycles walk_cost, Cycles stall_cost);

    /** One invariant sweep across all layers (config_.check_invariants). */
    void runInvariantChecks();

    std::unique_ptr<os::Policy> makePolicy();

    SystemConfig config_;
    std::unique_ptr<mem::PhysicalMemory> phys_;
    std::unique_ptr<os::Os> os_;
    std::unique_ptr<os::Policy> policy_;
    std::unique_ptr<FaultInjector> injector_;
    /** Differential reference model (null unless config_.oracle). */
    std::unique_ptr<DiffChecker> oracle_;
    std::vector<CoreState> cores_;
    std::vector<LaneState> lanes_;
    std::vector<os::Process *> core_process_;
    /** Tenant mode only (null otherwise): the contention scheduler. */
    std::unique_ptr<tenant::Scheduler> tsched_;
    std::vector<os::Process *> job_process_; //!< job -> its process
    std::vector<JobTally> job_tally_;        //!< tenant-mode job stats
    u64 total_accesses_ = 0;
    u64 next_interval_at_ = 0;
    u64 intervals_ = 0;
    u64 shootdowns_ = 0;
    u64 shock_pins_ = 0;
    u64 invariant_checks_ = 0;
    u64 invariant_failures_ = 0;
    std::string first_invariant_failure_;
    os::PromotionTrace recorded_;

    // ---- sampling state (meaningful only when config_.sampling) ----
    SamplePhase sample_phase_ = SamplePhase::Warming;
    u64 phase_left_ = 0;       //!< accesses remaining in current phase
    u64 win_measured_ = 0;     //!< measured accesses per window (W -
                               //!< warm-up; W/2 rounded up)
    u64 win_start_walks_ = 0;  //!< snapshots at measurement start
    u64 win_start_walk_cycles_ = 0;
    u64 win_start_tlb_accesses_ = 0;
    u64 win_start_cycles_ = 0;
    std::vector<double> win_miss_rates_; //!< per-window miss rate (%)
    std::vector<double> win_walk_cycles_; //!< per-window cycles/access
    u64 detailed_total_ = 0;   //!< accesses simulated in detail
    u64 ff_total_ = 0;         //!< accesses fast-forwarded
    Cycles ff_charge_ = 0;     //!< cycles charged per FF access
    /** Bresenham-thinned PCC touch rate: num/den walks per access,
        carried from the last completed detailed window. */
    u64 pcc_rate_num_ = 0;
    u64 pcc_rate_den_ = 1;
    u64 pcc_rate_acc_ = 0;

    // ---- telemetry (all null/empty unless config_.telemetry.enabled) ----
    std::unique_ptr<telemetry::Registry> tel_registry_;
    std::unique_ptr<telemetry::IntervalSampler> tel_sampler_;
    std::unique_ptr<telemetry::EventTracer> tel_tracer_;
    std::unique_ptr<telemetry::RegionProfiler> tel_profiler_;
    std::unique_ptr<telemetry::PromotionAuditLog> tel_audit_;
    telemetry::TopKChurnTracker tel_churn_;
    telemetry::Registry::Handle tel_churn_counter_;
    /** Tail histograms + exemplars (telemetry.histograms only). */
    std::unique_ptr<telemetry::TailRecorder> tel_tail_;
    /** Windowed quantile counters fed to the interval sampler. */
    telemetry::Registry::Handle tel_tail_p50_;
    telemetry::Registry::Handle tel_tail_p90_;
    telemetry::Registry::Handle tel_tail_p99_;
    telemetry::Registry::Handle tel_tail_p999_;
    telemetry::Registry::Handle tel_tail_max_;
};

std::string to_string(PolicyKind kind);

} // namespace pccsim::sim
