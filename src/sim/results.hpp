/**
 * @file
 * Run results: per-job (process) metrics and system-wide accounting,
 * matching the quantities the paper's figures report (speedup, PTW%,
 * TLB miss rate, THP counts).
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "telemetry/report.hpp"
#include "util/stats.hpp"
#include "util/types.hpp"

namespace pccsim::sim {

/** Metrics of one job (one workload instance / process). */
struct JobResult
{
    std::string workload;
    Pid pid = 0;
    Cycles wall_cycles = 0;      //!< completion time of the job
    u64 accesses = 0;            //!< simulated memory accesses
    u64 tlb_accesses = 0;
    u64 l1_hits = 0;
    u64 l2_hits = 0;
    u64 walks = 0;               //!< full TLB-hierarchy misses
    double refs_per_walk = 0.0;  //!< page-table fetches per walk
    u64 faults = 0;
    u64 promotions = 0;          //!< 2MB THPs created for this process
    u64 promotions_1g = 0;       //!< 1GB pages created (Sec. 3.2.3)
    u64 demotions = 0;
    u64 footprint_bytes = 0;
    u64 promoted_bytes = 0;      //!< footprint currently huge-backed
    u64 bloat_pages = 0;

    /** TLB miss rate: walks / TLB accesses, in percent (Fig. 1). */
    double
    tlbMissPercent() const
    {
        return percent(walks, tlb_accesses);
    }

    /** Share of accesses causing page-table walks (Fig. 5 bottom). */
    double
    ptwPercent() const
    {
        return percent(walks, accesses);
    }

    double
    hugeCoveragePercent() const
    {
        return percent(promoted_bytes, footprint_bytes);
    }

    /** Member-wise equality: the determinism tests compare runs. */
    bool operator==(const JobResult &) const = default;
};

/**
 * What the run survived: injected faults, the degradation machinery
 * they triggered, and the invariant sweeps that validated the result.
 * All zero on a clean run without checking enabled.
 */
struct ResilienceStats
{
    u64 injected_alloc_fails = 0;      //!< allocations vetoed by the gate
    u64 injected_compaction_fails = 0; //!< failed/aborted compactions
    u64 shootdown_storms = 0;          //!< storms that fired
    u64 frag_shocks = 0;               //!< mid-run fragmentation shocks
    u64 shock_blocks_pinned = 0;       //!< blocks pinned by shocks
    u64 promote_retries = 0;           //!< backoff retries taken
    u64 promote_retry_successes = 0;   //!< retries that then succeeded
    u64 reclaim_events = 0;            //!< pressure-reclaim entries
    u64 reclaim_demotions = 0;         //!< huge pages demoted by reclaim
    u64 reclaimed_frames = 0;          //!< bloat frames actually freed
    u64 invariant_checks = 0;          //!< sweeps performed
    u64 invariant_failures = 0;        //!< sweeps that found violations
    std::string first_invariant_failure; //!< diagnosis of the first one

    bool operator==(const ResilienceStats &) const = default;
};

/**
 * Point estimates from a sampled (SMARTS-style) run. Populated only
 * when SystemConfig::sampling is enabled; every estimate is computed
 * over *complete* detailed windows (a trailing partial window is
 * discarded). The first half of each window is detailed warm-up —
 * simulated but excluded from the estimators — so the TLB/cache state
 * the fast-forward phase left stale does not bias the measured half.
 * Confidence intervals are 95% normal-approximation half-widths
 * (1.96 * stddev / sqrt(windows)); with fewer than two windows the
 * half-width is reported as 0.
 */
struct SamplingStats
{
    bool enabled = false;
    u64 window = 0;            //!< configured W
    u64 fastforward = 0;       //!< configured F
    u64 windows = 0;           //!< complete detailed windows measured
    u64 detailed_accesses = 0; //!< accesses simulated in detail
    u64 ff_accesses = 0;       //!< accesses fast-forwarded

    /** TLB miss rate (walks / detailed accesses), in percent. */
    double miss_rate_mean = 0.0;
    double miss_rate_ci95 = 0.0;

    /** Page-walk cycles per access, over detailed windows. */
    double walk_cycles_mean = 0.0;
    double walk_cycles_ci95 = 0.0;

    bool operator==(const SamplingStats &) const = default;
};

/** Complete result of one System::run(). */
struct RunResult
{
    std::vector<JobResult> jobs;
    Cycles wall_cycles = 0;        //!< max over jobs
    u64 total_accesses = 0;
    u64 os_background_cycles = 0;  //!< kernel-thread effort
    u64 compactions = 0;
    u64 shootdowns = 0;
    u64 intervals = 0;
    ResilienceStats resilience{};
    SamplingStats sampling{};

    /**
     * Attached when SystemConfig::telemetry.enabled; null otherwise.
     * Shared so RunResult stays cheap to copy through the runner's
     * memo cache (the report itself is immutable once the run ends).
     */
    std::shared_ptr<const telemetry::TelemetryReport> telemetry;

    const JobResult &
    job(size_t i = 0) const
    {
        return jobs.at(i);
    }

    /**
     * Stat-for-stat equality, the runner's determinism contract.
     * Hand-written because `telemetry` must compare by *content*
     * (serial and --jobs=N runs allocate distinct report objects but
     * must produce identical series and traces), not pointer identity.
     */
    bool
    operator==(const RunResult &other) const
    {
        if (jobs != other.jobs || wall_cycles != other.wall_cycles ||
            total_accesses != other.total_accesses ||
            os_background_cycles != other.os_background_cycles ||
            compactions != other.compactions ||
            shootdowns != other.shootdowns ||
            intervals != other.intervals ||
            !(resilience == other.resilience) ||
            !(sampling == other.sampling)) {
            return false;
        }
        if (!telemetry || !other.telemetry)
            return !telemetry && !other.telemetry;
        return *telemetry == *other.telemetry;
    }
};

/**
 * Speedup of `run` relative to `baseline` for job i. Returns 0 when
 * the job is missing from either result or the run's wall time is
 * zero — degenerate baselines must not crash reporting loops.
 */
inline double
speedup(const RunResult &baseline, const RunResult &run, size_t i = 0)
{
    if (i >= baseline.jobs.size() || i >= run.jobs.size())
        return 0.0;
    return ratio(baseline.jobs[i].wall_cycles, run.jobs[i].wall_cycles);
}

/**
 * Counterfactual regret of a run: walk cycles spent in regions the
 * policy had ranked but skipped or failed to promote. 0 when auditing
 * was off (no telemetry attached) as well as for a regret-free policy;
 * harnesses that must distinguish the two check `result.telemetry`.
 */
inline u64
regretCycles(const RunResult &result)
{
    return result.telemetry ? result.telemetry->audit.regret_total_cycles
                            : 0;
}

} // namespace pccsim::sim
