#include "sim/invariants.hpp"

#include "mem/paging.hpp"

namespace pccsim::sim {

namespace {

using util::Status;

/** Check one Base4K/Unbacked region page-by-page. */
Status
checkBaseRegion(const os::Process &proc, const mem::PhysicalMemory &phys,
                Addr base)
{
    Status status;
    u32 faulted_bits = 0;
    for (u64 p = 0; p < mem::kPagesPer2M; ++p) {
        const Addr vaddr = base + p * mem::kBytes4K;
        const auto mapping = proc.pageTable().lookup(vaddr);
        if (!proc.faulted(vaddr)) {
            if (proc.touched(vaddr)) {
                status.update(Status::error(
                    "pid ", proc.pid(), " vaddr ", vaddr,
                    ": touched but not faulted"));
            }
            if (mapping.present) {
                status.update(Status::error(
                    "pid ", proc.pid(), " vaddr ", vaddr,
                    ": mapped but never faulted"));
            }
            continue;
        }
        ++faulted_bits;
        if (!mapping.present ||
            mapping.size != mem::PageSize::Base4K) {
            status.update(Status::error(
                "pid ", proc.pid(), " vaddr ", vaddr,
                ": faulted base page lost its 4KB mapping"));
            continue;
        }
        if (phys.useOf(mapping.pfn) != mem::FrameUse::AppBase) {
            status.update(Status::error(
                "pid ", proc.pid(), " vaddr ", vaddr, " pfn ",
                mapping.pfn, ": frame not in AppBase use"));
            continue;
        }
        const auto owner = phys.ownerOf(mapping.pfn);
        if (owner.pid != proc.pid() ||
            owner.vpn4k != mem::vpnOf(vaddr, mem::PageSize::Base4K)) {
            status.update(Status::error(
                "pid ", proc.pid(), " vaddr ", vaddr, " pfn ",
                mapping.pfn, ": reverse map disagrees (owner pid ",
                owner.pid, " vpn ", owner.vpn4k, ")"));
        }
    }
    if (faulted_bits != proc.faultedInRegion(base)) {
        status.update(Status::error(
            "pid ", proc.pid(), " region ", base,
            ": faulted bitmap count ", faulted_bits,
            " != per-region count ", proc.faultedInRegion(base)));
    }
    return status;
}

/** Check a huge leaf (2MB or 1GB) and its backing frame. */
Status
checkHugeLeaf(const os::Process &proc, const mem::PhysicalMemory &phys,
              Addr base, mem::PageSize size)
{
    const auto mapping = proc.pageTable().lookup(base);
    const char *label =
        size == mem::PageSize::Huge2M ? "2MB" : "1GB";
    if (!mapping.present || mapping.size != size) {
        return Status::error("pid ", proc.pid(), " region ", base,
                             ": state says ", label,
                             " but the page table disagrees");
    }
    const u64 frames = size == mem::PageSize::Huge2M
                           ? mem::kPagesPer2M
                           : mem::kPagesPer2M * mem::k2MPer1G;
    if (mapping.pfn & (frames - 1)) {
        return Status::error("pid ", proc.pid(), " region ", base,
                             ": misaligned ", label, " frame ",
                             mapping.pfn);
    }
    if (phys.useOf(mapping.pfn) != mem::FrameUse::AppHuge) {
        return Status::error("pid ", proc.pid(), " region ", base,
                             " pfn ", mapping.pfn,
                             ": huge frame not in AppHuge use");
    }
    const auto owner = phys.ownerOf(mapping.pfn);
    if (owner.pid != proc.pid() ||
        owner.vpn4k != mem::vpnOf(base, mem::PageSize::Base4K)) {
        return Status::error("pid ", proc.pid(), " region ", base,
                             " pfn ", mapping.pfn,
                             ": huge reverse map disagrees");
    }
    return Status{};
}

} // namespace

util::Status
checkMemoryConsistency(const os::Os &os, const mem::PhysicalMemory &phys)
{
    Status status;
    u64 promoted_bytes = 0;
    for (Pid pid = 0; pid < os.numProcesses(); ++pid) {
        const os::Process &proc = os.process(pid);
        promoted_bytes += proc.promotedBytes();
        for (u64 r = 0; r < proc.numRegions(); ++r) {
            const Addr base = proc.regionBase(r);
            switch (proc.regionStateOf(base)) {
              case os::RegionState::Unbacked:
                if (proc.faultedInRegion(base) != 0) {
                    status.update(Status::error(
                        "pid ", pid, " region ", base,
                        ": unbacked but has faulted pages"));
                }
                break;
              case os::RegionState::Base4K:
                status.update(checkBaseRegion(proc, phys, base));
                break;
              case os::RegionState::Huge2M:
                status.update(checkHugeLeaf(proc, phys, base,
                                            mem::PageSize::Huge2M));
                if (proc.faultedInRegion(base) != mem::kPagesPer2M) {
                    status.update(Status::error(
                        "pid ", pid, " region ", base,
                        ": huge region not fully marked faulted"));
                }
                break;
              case os::RegionState::Huge1G:
                if (mem::isAligned(base, mem::PageSize::Huge1G)) {
                    status.update(checkHugeLeaf(
                        proc, phys, base, mem::PageSize::Huge1G));
                }
                break;
            }
        }
    }

    // Global frame accounting: the buddy's free count and the use map
    // must agree, and the AppHuge population must equal the promoted
    // footprint — leaks and double-frees show up here.
    u64 in_use = 0;
    u64 app_huge = 0;
    u64 unmovable = 0;
    for (Pfn pfn = 0; pfn < phys.totalFrames(); ++pfn) {
        const auto use = phys.useOf(pfn);
        if (use == mem::FrameUse::Free)
            continue;
        ++in_use;
        if (use == mem::FrameUse::AppHuge)
            ++app_huge;
        else if (use == mem::FrameUse::Unmovable)
            ++unmovable;
    }
    if (in_use != phys.totalFrames() - phys.freeFrames()) {
        status.update(Status::error(
            "frame accounting: ", in_use, " frames marked in use but "
            "buddy reports ", phys.totalFrames() - phys.freeFrames()));
    }
    if (app_huge != promoted_bytes / mem::kBytes4K) {
        status.update(Status::error(
            "huge accounting: ", app_huge, " AppHuge frames vs ",
            promoted_bytes / mem::kBytes4K, " promoted"));
    }
    if (unmovable != phys.pinnedBlocks()) {
        status.update(Status::error(
            "pin accounting: ", unmovable, " unmovable frames vs ",
            phys.pinnedBlocks(), " pins recorded"));
    }
    return status;
}

util::Status
checkTlbResidency(const tlb::TlbHierarchy &tlb, const os::Process &proc)
{
    Status status;
    tlb.forEachResident([&](Vpn vpn, mem::PageSize size) {
        const Addr vaddr = vpn << mem::shiftOf(size);
        if (!proc.contains(vaddr)) {
            status.update(util::Status::error(
                "TLB entry vpn ", vpn, " outside pid ", proc.pid(),
                "'s heap"));
            return;
        }
        const auto mapping = proc.pageTable().lookup(vaddr);
        if (!mapping.present || mapping.size != size) {
            status.update(util::Status::error(
                "stale TLB entry: pid ", proc.pid(), " vaddr ", vaddr,
                " cached at size ", static_cast<int>(size),
                " but page table says ",
                mapping.present ? static_cast<int>(mapping.size) : -1));
        }
    });
    return status;
}

util::Status
checkPccResidency(const pcc::PccUnit &pcc, const os::Process &proc)
{
    Status status;
    for (const auto &candidate : pcc.pcc2m().snapshot()) {
        const Addr base = candidate.region << mem::kShift2M;
        if (!proc.contains(base))
            continue; // a different process's past residency; harmless
        const auto state = proc.regionStateOf(base);
        if (state == os::RegionState::Huge2M ||
            state == os::RegionState::Huge1G) {
            status.update(util::Status::error(
                "PCC(2M) tracks already-huge region ", base, " of pid ",
                proc.pid(), " — promotion shootdown missed it"));
        }
    }
    for (const auto &candidate : pcc.pcc1g().snapshot()) {
        const Addr base = candidate.region << mem::kShift1G;
        if (!proc.contains(base))
            continue;
        if (proc.regionStateOf(base) == os::RegionState::Huge1G) {
            status.update(util::Status::error(
                "PCC(1G) tracks already-huge region ", base, " of pid ",
                proc.pid(), " — promotion shootdown missed it"));
        }
    }
    return status;
}

} // namespace pccsim::sim
