/**
 * @file
 * Cross-layer invariant checking.
 *
 * The simulator keeps the same state in several places on purpose: the
 * radix page table is authoritative, the per-process flat arrays mirror
 * it for the hot path, physical-frame ownership reverse-maps it, and
 * the TLBs/PCCs cache (parts of) it. Fault injection stresses exactly
 * the code that keeps those views synchronized — compaction rollback,
 * promotion failure paths, pressure reclaim — so after every policy
 * interval the System can sweep all of them and prove they still agree.
 *
 * Checks return util::Status instead of asserting: a violation is
 * reported with a precise diagnosis (and a count of how widespread it
 * is) while the run keeps going, which is what makes the checker usable
 * inside long fault-injection campaigns.
 */

#pragma once

#include "mem/phys_mem.hpp"
#include "os/os.hpp"
#include "pcc/pcc_unit.hpp"
#include "tlb/hierarchy.hpp"
#include "util/status.hpp"

namespace pccsim::sim {

/**
 * Page tables, the flat per-process mirrors, and physical-frame
 * ownership all agree:
 *  - region state matches the page-table leaf at that address;
 *  - every faulted base page maps to an AppBase frame owned by
 *    (pid, vpn), and every non-faulted page is unmapped;
 *  - per-region faulted counts match the bitmap, and touched pages are
 *    a subset of faulted pages;
 *  - huge leaves point at aligned AppHuge frames owned by the process;
 *  - global frame accounting balances (no leaked or double-freed
 *    frames; AppHuge population equals promoted bytes).
 */
util::Status checkMemoryConsistency(const os::Os &os,
                                    const mem::PhysicalMemory &phys);

/**
 * Every TLB entry for the process still translates a page the page
 * table maps at that exact size — i.e. no promotion, demotion,
 * migration or reclaim left a stale translation behind.
 */
util::Status checkTlbResidency(const tlb::TlbHierarchy &tlb,
                               const os::Process &proc);

/**
 * No PCC candidate names a region the OS already backs with a huge
 * page of that candidate's granularity: promotions must invalidate
 * their candidates via the shootdown path (Fig. 4 step C).
 */
util::Status checkPccResidency(const pcc::PccUnit &pcc,
                               const os::Process &proc);

} // namespace pccsim::sim
