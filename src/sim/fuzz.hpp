/**
 * @file
 * Deterministic fuzz-and-shrink harness for the simulator.
 *
 * A FuzzSpec is a small, fully-serializable point in configuration
 * space: a parameterized synthetic workload plus the SystemConfig
 * switches that have historically harboured bugs (policies, caps,
 * fragmentation, fault-injection schedules, telemetry, invariant
 * sweeps). checkSpec() runs three independent correctness gates over
 * one spec:
 *
 *  1. the differential oracle in full lockstep (sim/oracle.hpp);
 *  2. result-neutrality of the oracle itself (oracle-on == oracle-off);
 *  3. serial-vs-parallel determinism (Runner(1) vs Runner(jobs) over a
 *     small batch of seed variants, compared result-for-result).
 *
 * Everything is seeded: iteration i of a campaign is a pure function of
 * (campaign seed, i), and every failure is reported as a spec string
 * (FuzzSpec::toString) that `bench/fuzz_diff --spec=...` re-runs
 * verbatim. Failures are auto-shrunk (greedy, to a fixpoint) before
 * reporting: halve the access count, drop optional features toward
 * defaults, reduce the workload — keeping only changes that preserve
 * the failure kind.
 */

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/experiment.hpp"

namespace pccsim::sim {

/** One fuzzable configuration point; round-trips through toString(). */
struct FuzzSpec
{
    // ---- workload (maps to a "syn:..." registry name) ----
    std::string pattern = "uniform"; //!< uniform|zipf|seq|hot
    u64 footprint_mb = 8;
    u64 ops = 100'000;
    u64 hot_regions = 4;
    u64 seed = 1;

    // ---- system ----
    u32 lanes = 1;
    PolicyKind policy = PolicyKind::Pcc;
    double cap_percent = -1.0;
    double frag_fraction = 0.0;
    bool telemetry = false;
    bool check_invariants = false;
    u64 interval_accesses = 0;

    // ---- fault injection ----
    double alloc_fail_huge = 0.0;
    double compaction_fail = 0.0;
    double shootdown_storm = 0.0;
    u64 shock_period = 0; //!< intervals between frag shocks; 0 = none

    /** Planted bug under test (mutation self-tests only). */
    HotPathMutation mutation = HotPathMutation::None;

    /** One-line, space-separated, exactly round-trippable form. */
    std::string toString() const;
    static std::optional<FuzzSpec> parse(const std::string &text);

    /** The experiment this spec describes (oracle not yet enabled). */
    ExperimentSpec toExperiment() const;

    bool operator==(const FuzzSpec &other) const;
};

/** Iteration i of a campaign: pure function of (campaign_seed, i). */
FuzzSpec randomSpec(u64 campaign_seed, u64 iteration);

/** A reproducible failure found by checkSpec(). */
struct FuzzFailure
{
    FuzzSpec spec;
    /** Gate that tripped: oracle | neutrality | parallel | error. */
    std::string kind;
    std::string detail;
};

/**
 * Run all three gates over one spec. Returns the first failure, or
 * nullopt when the spec passes. `jobs` sizes the parallel runner of
 * gate 3 (>= 2 to actually exercise the pool).
 */
std::optional<FuzzFailure> checkSpec(const FuzzSpec &spec, u32 jobs);

/**
 * Greedily shrink a failing spec while checkSpec() keeps failing with
 * the same kind; returns the fixpoint (the input itself if it does not
 * actually fail). Each round tries: halving ops / footprint /
 * hot_regions, lanes -> 1, dropping telemetry / invariants / interval /
 * each fault field / cap / frag, and simplifying pattern and policy.
 */
FuzzSpec shrink(const FuzzSpec &failing, u32 jobs);

/** Outcome of a campaign of seeded iterations. */
struct FuzzCampaign
{
    u64 iterations = 0;
    std::vector<FuzzFailure> failures; //!< shrunk when requested
};

FuzzCampaign runCampaign(u64 campaign_seed, u64 iterations, u32 jobs,
                         bool shrink_failures);

} // namespace pccsim::sim
