/**
 * @file
 * Synthetic graph generators standing in for the paper's inputs
 * (Table 1): Kronecker/R-MAT power-law networks ("Kronecker 25"),
 * a social-network surrogate ("Twitter"), and a web-crawl surrogate
 * ("Sd1 Web"). All generators are deterministic given a seed.
 */

#pragma once

#include "graph/csr.hpp"
#include "util/rng.hpp"

namespace pccsim::graph {

/** Which real-world dataset a generator imitates. */
enum class NetworkKind
{
    Kronecker, //!< GAP-style R-MAT power law (synthetic)
    Social,    //!< Twitter-like: heavier skew, random placement
    Web,       //!< web-like: strong locality plus hub pages
};

/** Generation parameters. */
struct GraphSpec
{
    unsigned scale = 18;    //!< num_nodes = 2^scale
    unsigned avg_degree = 16;
    NetworkKind kind = NetworkKind::Kronecker;
    bool weighted = false;  //!< attach uniform random edge weights
    u64 seed = 42;

    NodeId numNodes() const { return NodeId(1) << scale; }
    u64 numDirectedEdges() const
    {
        return static_cast<u64>(numNodes()) * avg_degree / 2;
    }
};

/** Generate a graph per the spec; symmetrized CSR. */
CsrGraph generate(const GraphSpec &spec);

/** R-MAT edge sampler with GAP's (a,b,c,d) = (.57,.19,.19,.05). */
Edge rmatEdge(unsigned scale, Rng &rng, double a = 0.57, double b = 0.19,
              double c = 0.19);

/** Attach uniform random weights in [1, max_weight] to a graph. */
CsrGraph withUniformWeights(CsrGraph graph, u64 seed, u32 max_weight = 255);

/**
 * Degree-based grouping (DBG) reorder [Faldu et al., IISWC'19]: place
 * vertices into log2-degree groups, hottest (highest degree) group
 * first, preserving relative order within groups. The paper evaluates
 * each graph workload on both sorted (DBG) and unsorted inputs.
 */
CsrGraph dbgReorder(const CsrGraph &graph);

} // namespace pccsim::graph
