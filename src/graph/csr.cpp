#include "graph/csr.hpp"

namespace pccsim::graph {

CsrGraph
buildCsr(NodeId num_nodes, std::vector<Edge> &edges, bool symmetrize)
{
    const u64 directed = edges.size() * (symmetrize ? 2ull : 1ull);
    std::vector<u64> offsets(static_cast<u64>(num_nodes) + 1, 0);

    for (const Edge &e : edges) {
        PCCSIM_ASSERT(e.src < num_nodes && e.dst < num_nodes);
        ++offsets[e.src + 1];
        if (symmetrize)
            ++offsets[e.dst + 1];
    }
    for (u64 v = 0; v < num_nodes; ++v)
        offsets[v + 1] += offsets[v];

    std::vector<NodeId> targets(directed);
    std::vector<u64> cursor(offsets.begin(), offsets.end() - 1);
    for (const Edge &e : edges) {
        targets[cursor[e.src]++] = e.dst;
        if (symmetrize)
            targets[cursor[e.dst]++] = e.src;
    }
    edges.clear();
    edges.shrink_to_fit();
    return CsrGraph(std::move(offsets), std::move(targets));
}

} // namespace pccsim::graph
