/**
 * @file
 * Compressed-sparse-row graph representation used by the GAP-style
 * graph workloads (BFS, SSSP, PageRank).
 */

#pragma once

#include <span>
#include <vector>

#include "util/log.hpp"
#include "util/types.hpp"

namespace pccsim::graph {

/** Vertex identifier. */
using NodeId = u32;

/** Immutable CSR graph, optionally edge-weighted. */
class CsrGraph
{
  public:
    CsrGraph() = default;

    /**
     * Construct from prebuilt arrays. offsets has num_nodes+1 entries;
     * weights is empty or parallel to targets.
     */
    CsrGraph(std::vector<u64> offsets, std::vector<NodeId> targets,
             std::vector<u32> weights = {})
        : offsets_(std::move(offsets)),
          targets_(std::move(targets)),
          weights_(std::move(weights))
    {
        PCCSIM_ASSERT(!offsets_.empty());
        PCCSIM_ASSERT(offsets_.back() == targets_.size());
        PCCSIM_ASSERT(weights_.empty() ||
                      weights_.size() == targets_.size());
    }

    NodeId
    numNodes() const
    {
        return static_cast<NodeId>(offsets_.empty() ? 0
                                                    : offsets_.size() - 1);
    }

    u64 numEdges() const { return targets_.size(); }

    u32
    degree(NodeId v) const
    {
        return static_cast<u32>(offsets_[v + 1] - offsets_[v]);
    }

    std::span<const NodeId>
    neighbors(NodeId v) const
    {
        return {targets_.data() + offsets_[v],
                targets_.data() + offsets_[v + 1]};
    }

    std::span<const u32>
    edgeWeights(NodeId v) const
    {
        PCCSIM_ASSERT(hasWeights());
        return {weights_.data() + offsets_[v],
                weights_.data() + offsets_[v + 1]};
    }

    bool hasWeights() const { return !weights_.empty(); }

    const std::vector<u64> &offsets() const { return offsets_; }
    const std::vector<NodeId> &targets() const { return targets_; }
    const std::vector<u32> &weights() const { return weights_; }

    /** Host-side bytes of the CSR arrays (the simulated footprint core). */
    u64
    bytes() const
    {
        return offsets_.size() * sizeof(u64) +
               targets_.size() * sizeof(NodeId) +
               weights_.size() * sizeof(u32);
    }

  private:
    std::vector<u64> offsets_;
    std::vector<NodeId> targets_;
    std::vector<u32> weights_;
};

/** Directed edge used during construction. */
struct Edge
{
    NodeId src;
    NodeId dst;
};

/**
 * Build a CSR graph from an edge list.
 *
 * @param num_nodes Number of vertices.
 * @param edges Edge list; consumed (cleared) to bound peak memory.
 * @param symmetrize Insert both directions of every edge (GAP treats
 *        its inputs as undirected for BFS/PR).
 */
CsrGraph buildCsr(NodeId num_nodes, std::vector<Edge> &edges,
                  bool symmetrize = true);

} // namespace pccsim::graph
