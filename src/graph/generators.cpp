#include "graph/generators.hpp"

#include <algorithm>
#include <numeric>

#include "util/log.hpp"

namespace pccsim::graph {

Edge
rmatEdge(unsigned scale, Rng &rng, double a, double b, double c)
{
    NodeId src = 0;
    NodeId dst = 0;
    for (unsigned bit = 0; bit < scale; ++bit) {
        const double r = rng.uniform();
        src <<= 1;
        dst <<= 1;
        if (r < a) {
            // top-left quadrant: neither bit set
        } else if (r < a + b) {
            dst |= 1;
        } else if (r < a + b + c) {
            src |= 1;
        } else {
            src |= 1;
            dst |= 1;
        }
    }
    return {src, dst};
}

namespace {

/** Kronecker-style R-MAT power-law network (GAP parameters). */
std::vector<Edge>
kroneckerEdges(const GraphSpec &spec, Rng &rng)
{
    std::vector<Edge> edges;
    edges.reserve(spec.numDirectedEdges());
    for (u64 i = 0; i < spec.numDirectedEdges(); ++i)
        edges.push_back(rmatEdge(spec.scale, rng));
    return edges;
}

/**
 * Twitter-like social surrogate: a small celebrity set attracts a large
 * share of endpoints (Zipf-distributed popularity) while the rest of
 * the endpoints are uniform — heavier skew than R-MAT and no locality
 * between the two endpoints.
 */
std::vector<Edge>
socialEdges(const GraphSpec &spec, Rng &rng)
{
    const NodeId n = spec.numNodes();
    ZipfSampler zipf(n, 0.9);
    std::vector<Edge> edges;
    edges.reserve(spec.numDirectedEdges());
    for (u64 i = 0; i < spec.numDirectedEdges(); ++i) {
        const NodeId src = static_cast<NodeId>(rng.below(n));
        const NodeId dst = static_cast<NodeId>(zipf.sample(rng));
        edges.push_back({src, dst});
    }
    return edges;
}

/**
 * Web-crawl surrogate: most links are intra-host (destination close to
 * the source in vertex order, modelling crawl-order locality), with a
 * minority of cross-host links to Zipf-popular hub pages.
 */
std::vector<Edge>
webEdges(const GraphSpec &spec, Rng &rng)
{
    const NodeId n = spec.numNodes();
    ZipfSampler zipf(n, 0.8);
    std::vector<Edge> edges;
    edges.reserve(spec.numDirectedEdges());
    const u64 host_span = 1024; // pages per simulated host
    for (u64 i = 0; i < spec.numDirectedEdges(); ++i) {
        const NodeId src = static_cast<NodeId>(rng.below(n));
        NodeId dst;
        if (rng.chance(0.8)) {
            const u64 host_base = (src / host_span) * host_span;
            dst = static_cast<NodeId>(
                std::min<u64>(host_base + rng.below(host_span), n - 1));
        } else {
            dst = static_cast<NodeId>(zipf.sample(rng));
        }
        edges.push_back({src, dst});
    }
    return edges;
}

} // namespace

CsrGraph
generate(const GraphSpec &spec)
{
    Rng rng(spec.seed);
    std::vector<Edge> edges;
    switch (spec.kind) {
      case NetworkKind::Kronecker:
        edges = kroneckerEdges(spec, rng);
        break;
      case NetworkKind::Social:
        edges = socialEdges(spec, rng);
        break;
      case NetworkKind::Web:
        edges = webEdges(spec, rng);
        break;
    }
    CsrGraph graph = buildCsr(spec.numNodes(), edges, true);
    if (spec.weighted)
        graph = withUniformWeights(std::move(graph), spec.seed ^ 0x77ull);
    return graph;
}

CsrGraph
withUniformWeights(CsrGraph graph, u64 seed, u32 max_weight)
{
    Rng rng(seed);
    std::vector<u32> weights(graph.numEdges());
    for (auto &w : weights)
        w = static_cast<u32>(rng.range(1, max_weight));
    return CsrGraph(std::vector<u64>(graph.offsets()),
                    std::vector<NodeId>(graph.targets()),
                    std::move(weights));
}

CsrGraph
dbgReorder(const CsrGraph &graph)
{
    const NodeId n = graph.numNodes();
    // Group vertices by floor(log2(degree)); hotter groups first.
    std::vector<NodeId> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](NodeId a, NodeId b) {
                         unsigned ga = 0, gb = 0;
                         for (u32 d = graph.degree(a); d > 1; d >>= 1)
                             ++ga;
                         for (u32 d = graph.degree(b); d > 1; d >>= 1)
                             ++gb;
                         return ga > gb;
                     });

    // order[new_id] = old_id; build the inverse permutation.
    std::vector<NodeId> new_id(n);
    for (NodeId i = 0; i < n; ++i)
        new_id[order[i]] = i;

    std::vector<u64> offsets(static_cast<u64>(n) + 1, 0);
    for (NodeId v = 0; v < n; ++v)
        offsets[new_id[v] + 1] = graph.degree(v);
    for (u64 v = 0; v < n; ++v)
        offsets[v + 1] += offsets[v];

    std::vector<NodeId> targets(graph.numEdges());
    std::vector<u32> weights;
    if (graph.hasWeights())
        weights.resize(graph.numEdges());
    for (NodeId v = 0; v < n; ++v) {
        const u64 base = offsets[new_id[v]];
        const auto nbrs = graph.neighbors(v);
        for (u64 i = 0; i < nbrs.size(); ++i) {
            targets[base + i] = new_id[nbrs[i]];
            if (graph.hasWeights())
                weights[base + i] = graph.edgeWeights(v)[i];
        }
    }
    return CsrGraph(std::move(offsets), std::move(targets),
                    std::move(weights));
}

} // namespace pccsim::graph
