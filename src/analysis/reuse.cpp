#include "analysis/reuse.hpp"

#include <algorithm>
#include <map>

namespace pccsim::analysis {

ReuseClass
ReuseTracker::classify(double mean4k, double mean2m) const
{
    const double threshold = static_cast<double>(threshold_);
    if (mean4k < threshold)
        return ReuseClass::TlbFriendly;
    if (mean2m < threshold)
        return ReuseClass::Hub;
    return ReuseClass::LowReuse;
}

std::vector<PageReuse>
ReuseTracker::results() const
{
    std::vector<PageReuse> out;
    out.reserve(stats4k_.size());
    for (const auto &[vpn, stat] : stats4k_) {
        PageReuse page;
        page.vpn4k = vpn;
        page.mean_4k = meanOf(stat);
        page.accesses = stat.accesses;
        const auto it = stats2m_.find(mem::vpn4KTo2M(vpn));
        page.mean_2m = it == stats2m_.end() ? 0.0 : meanOf(it->second);
        // A page touched exactly once has no reuse at all: it is cold
        // data, not TLB-friendly data — promotion cannot help it.
        page.cls = stat.reuse_count == 0
            ? ReuseClass::LowReuse
            : classify(page.mean_4k, page.mean_2m);
        out.push_back(page);
    }
    std::sort(out.begin(), out.end(),
              [](const PageReuse &a, const PageReuse &b) {
                  return a.vpn4k < b.vpn4k;
              });
    return out;
}

ReuseTracker::Summary
ReuseTracker::summarize() const
{
    Summary summary;
    for (const auto &page : results()) {
        switch (page.cls) {
          case ReuseClass::TlbFriendly: ++summary.tlb_friendly; break;
          case ReuseClass::Hub: ++summary.hubs; break;
          case ReuseClass::LowReuse: ++summary.low_reuse; break;
        }
    }
    return summary;
}

std::vector<Vpn>
ReuseTracker::hubRegions() const
{
    std::map<Vpn, u64> hub_pages_per_region;
    for (const auto &page : results())
        if (page.cls == ReuseClass::Hub)
            ++hub_pages_per_region[mem::vpn4KTo2M(page.vpn4k)];

    std::vector<std::pair<Vpn, u64>> ranked(hub_pages_per_region.begin(),
                                            hub_pages_per_region.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    std::vector<Vpn> out;
    out.reserve(ranked.size());
    for (const auto &[region, count] : ranked)
        out.push_back(region);
    return out;
}

} // namespace pccsim::analysis
