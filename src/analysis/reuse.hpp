/**
 * @file
 * Page-level reuse-distance analysis (Sec. 3.1, Fig. 2).
 *
 * For every page touched by an address stream, at both 4KB and 2MB
 * granularity, this tracker computes the mean reuse distance — the
 * number of accesses to *other* pages between two consecutive accesses
 * to the page. Pages are then classified:
 *
 *   TlbFriendly : low 4KB reuse distance (translations stay resident);
 *   Hub         : high 4KB distance but low 2MB distance — promoting
 *                 these eliminates the most TLB misses;
 *   LowReuse    : high distance at both granularities — promotion
 *                 would not help.
 */

#pragma once

#include <unordered_map>
#include <vector>

#include "mem/paging.hpp"
#include "util/types.hpp"

namespace pccsim::analysis {

enum class ReuseClass : u8
{
    TlbFriendly = 0,
    Hub = 1,
    LowReuse = 2,
};

/** Per-page aggregate produced by the tracker. */
struct PageReuse
{
    Vpn vpn4k = 0;
    double mean_4k = 0.0;  //!< mean reuse distance at 4KB granularity
    double mean_2m = 0.0;  //!< of the enclosing 2MB region
    u64 accesses = 0;
    ReuseClass cls = ReuseClass::TlbFriendly;
};

/**
 * Streaming reuse-distance tracker.
 *
 * Reuse distance is approximated by the count of intervening accesses
 * whose page differs (the "stack distance in accesses" the paper's
 * Fig. 2 axes use), which needs only a last-seen timestamp per page.
 */
class ReuseTracker
{
  public:
    /**
     * @param threshold Reuse distance below which a page counts as
     *        TLB-resident. The paper uses 1024 — a typical L2 TLB
     *        entry count.
     */
    explicit ReuseTracker(u64 threshold = 1024) : threshold_(threshold) {}

    /** Observe one access. */
    void
    touch(Addr vaddr)
    {
        ++clock_;
        note(stats4k_, mem::vpnOf(vaddr, mem::PageSize::Base4K));
        note(stats2m_, mem::vpnOf(vaddr, mem::PageSize::Huge2M));
    }

    /** Classified per-4KB-page results. */
    std::vector<PageReuse> results() const;

    /** Count of pages per class. */
    struct Summary
    {
        u64 tlb_friendly = 0;
        u64 hubs = 0;
        u64 low_reuse = 0;

        u64
        total() const
        {
            return tlb_friendly + hubs + low_reuse;
        }
    };

    Summary summarize() const;

    /**
     * 2MB regions ranked by how much promoting them would help:
     * regions containing the most HUB pages first.
     */
    std::vector<Vpn> hubRegions() const;

    u64 threshold() const { return threshold_; }
    u64 accesses() const { return clock_; }

  private:
    struct PageStat
    {
        u64 last_access = 0;
        u64 reuse_sum = 0;
        u64 reuse_count = 0;
        u64 accesses = 0;
    };

    void
    note(std::unordered_map<Vpn, PageStat> &map, Vpn vpn)
    {
        PageStat &stat = map[vpn];
        if (stat.accesses > 0) {
            stat.reuse_sum += clock_ - stat.last_access - 1;
            ++stat.reuse_count;
        }
        stat.last_access = clock_;
        ++stat.accesses;
    }

    static double
    meanOf(const PageStat &stat)
    {
        return stat.reuse_count == 0
            ? 0.0
            : static_cast<double>(stat.reuse_sum) /
                  static_cast<double>(stat.reuse_count);
    }

    ReuseClass classify(double mean4k, double mean2m) const;

    u64 threshold_;
    u64 clock_ = 0;
    std::unordered_map<Vpn, PageStat> stats4k_;
    std::unordered_map<Vpn, PageStat> stats2m_;
};

} // namespace pccsim::analysis
