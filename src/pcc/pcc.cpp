#include "pcc/pcc.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace pccsim::pcc {

PromotionCandidateCache::PromotionCandidateCache(PccConfig config)
    : config_(config)
{
    PCCSIM_ASSERT(config_.entries > 0, "PCC must have at least one entry");
    PCCSIM_ASSERT(config_.counter_bits >= 1 && config_.counter_bits <= 32,
                  "PCC counter width out of range");
    entries_.reserve(config_.entries);
    index_.reserve(config_.entries * 2);
}

void
PromotionCandidateCache::touch(Vpn region)
{
    auto it = index_.find(region);
    if (it != index_.end()) {
        Entry &entry = entries_[it->second];
        entry.stamp = ++clock_;
        ++entry.frequency;
        ++hits_;
        if (entry.frequency >= config_.counterMax()) {
            // Decay: halve every counter to preserve relative order
            // while making room for future increments (Sec. 3.2.1).
            for (auto &e : entries_)
                e.frequency >>= 1;
            ++decays_;
        }
        return;
    }

    ++misses_;
    if (full()) {
        const u32 victim = victimIndex();
        const Vpn victim_region = entries_[victim].region;
        index_.erase(victim_region);
        entries_[victim] = {region, 0, ++clock_};
        index_[region] = victim;
        ++evictions_;
        if (evicted_)
            evicted_(victim_region);
        return;
    }
    entries_.push_back({region, 0, ++clock_});
    index_[region] = static_cast<u32>(entries_.size() - 1);
}

u32
PromotionCandidateCache::victimIndex() const
{
    PCCSIM_ASSERT(!entries_.empty());
    u32 victim = 0;
    for (u32 i = 1; i < entries_.size(); ++i) {
        const Entry &e = entries_[i];
        const Entry &v = entries_[victim];
        if (config_.replacement == Replacement::PureLru) {
            if (e.stamp < v.stamp)
                victim = i;
        } else {
            if (e.frequency < v.frequency ||
                (e.frequency == v.frequency && e.stamp < v.stamp)) {
                victim = i;
            }
        }
    }
    return victim;
}

bool
PromotionCandidateCache::invalidate(Vpn region)
{
    auto it = index_.find(region);
    if (it == index_.end())
        return false;
    const u32 slot = it->second;
    const u32 last = static_cast<u32>(entries_.size() - 1);
    if (slot != last) {
        entries_[slot] = entries_[last];
        index_[entries_[slot].region] = slot;
    }
    entries_.pop_back();
    index_.erase(it);
    ++invalidations_;
    return true;
}

std::optional<u64>
PromotionCandidateCache::frequencyOf(Vpn region) const
{
    auto it = index_.find(region);
    if (it == index_.end())
        return std::nullopt;
    return entries_[it->second].frequency;
}

std::vector<Candidate>
PromotionCandidateCache::snapshot() const
{
    std::vector<Entry> sorted = entries_;
    std::sort(sorted.begin(), sorted.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.frequency != b.frequency)
                      return a.frequency > b.frequency;
                  return a.stamp > b.stamp;
              });
    std::vector<Candidate> out;
    out.reserve(sorted.size());
    for (const auto &e : sorted)
        out.push_back({e.region, e.frequency});
    return out;
}

std::optional<Candidate>
PromotionCandidateCache::top() const
{
    if (entries_.empty())
        return std::nullopt;
    const Entry *best = &entries_[0];
    for (const auto &e : entries_) {
        if (e.frequency > best->frequency ||
            (e.frequency == best->frequency && e.stamp > best->stamp)) {
            best = &e;
        }
    }
    return Candidate{best->region, best->frequency};
}

void
PromotionCandidateCache::clear()
{
    entries_.clear();
    index_.clear();
}

void
PromotionCandidateCache::resetStats()
{
    hits_ = misses_ = evictions_ = decays_ = invalidations_ = 0;
}

} // namespace pccsim::pcc
