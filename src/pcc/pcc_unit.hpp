/**
 * @file
 * Per-core PCC unit: the 2MB PCC plus the optional smaller 1GB PCC, and
 * the walk-outcome insertion protocol of the paper's Fig. 3 (left).
 *
 * On every hardware page-table walk the unit applies the cold-miss
 * filter: a region is only inserted/updated if the walker observed its
 * level's accessed bit already set before this walk. 4KB-mapped walks
 * feed the 2MB PCC; both 4KB- and 2MB-mapped walks feed the 1GB PCC
 * (Sec. 3.2.3: frequent walks from 2MB pages indicate that even the 2MB
 * size is insufficient).
 */

#pragma once

#include "mem/paging.hpp"
#include "pcc/pcc.hpp"
#include "pt/walker.hpp"
#include "util/types.hpp"

namespace pccsim::pcc {

/** Where promotion candidates are observed (Sec. 5.4.1). */
enum class CandidateSource : u8
{
    /** The paper's design: accessed-bit-filtered page-table walks. */
    PtwFiltered = 0,
    /**
     * Design alternative: feed the candidate structure from L2 TLB
     * evictions instead (a victim buffer). Cannot filter cold or
     * sparse data, which is the paper's argument against it.
     */
    L2Victims = 1,
};

/** Configuration for a full per-core unit. */
struct PccUnitConfig
{
    PccConfig pcc2m{128, 8, Replacement::LfuLruTie};
    PccConfig pcc1g{8, 8, Replacement::LfuLruTie};
    bool enable_1g = false;
    /**
     * Cold-miss filter (Sec. 3.2): only track regions whose accessed bit
     * was already set when the walk reached their level. Disabling this
     * is the `abl_coldfilter` ablation.
     */
    bool access_bit_filter = true;
    CandidateSource source = CandidateSource::PtwFiltered;
};

class PccUnit
{
  public:
    explicit PccUnit(PccUnitConfig config = PccUnitConfig{})
        : config_(config), pcc2m_(config.pcc2m), pcc1g_(config.pcc1g)
    {
    }

    /**
     * Feed one completed page-table walk into the PCC(s).
     * @param vaddr The faulting virtual address.
     * @param walk The walker's observation for this address.
     */
    void
    observeWalk(Addr vaddr, const pt::WalkOutcome &walk)
    {
        if (!walk.present)
            return;
        if (config_.source != CandidateSource::PtwFiltered) {
            // Victim-buffer mode still feeds the 1GB PCC from walks
            // (it has no other source), but 2MB candidates come from
            // observeL2Victim().
            if (config_.enable_1g &&
                walk.size != mem::PageSize::Huge1G &&
                walk.pud_was_accessed) {
                pcc1g_.touch(mem::vpnOf(vaddr, mem::PageSize::Huge1G));
            }
            return;
        }
        // Cold-miss filter: this walk qualifies only if the *leaf*
        // accessed bit was already set — i.e. the page itself has been
        // walked before. The region-level (PMD) bit alone would admit
        // the compulsory first walk of every page in a warm region,
        // letting single-pass streaming data pollute the PCC.
        if (walk.size == mem::PageSize::Base4K &&
            (walk.pte_was_accessed || !config_.access_bit_filter)) {
            pcc2m_.touch(mem::vpnOf(vaddr, mem::PageSize::Huge2M));
        }
        if (config_.enable_1g && walk.size != mem::PageSize::Huge1G &&
            (walk.pud_was_accessed || !config_.access_bit_filter)) {
            pcc1g_.touch(mem::vpnOf(vaddr, mem::PageSize::Huge1G));
        }
    }

    /**
     * Sampled-mode candidate feed: one fast-forwarded access that a
     * detailed window would (with some probability) have turned into
     * a walk. No walker runs during fast-forward, so the accessed-bit
     * state is supplied by the OS-side touched bitmap: `was_accessed`
     * mirrors walk.pte_was_accessed (the page had been touched before
     * this access) and the 4K-mapping requirement mirrors
     * walk.size == Base4K. The 1GB feed is skipped — without a walk
     * there is no PUD accessed-bit observation to filter on, and the
     * 1GB PCC's integral over-counts would directly distort Sec.
     * 3.2.3 promotion decisions.
     */
    void
    observeSampled(Addr vaddr, bool mapped_4k, bool was_accessed)
    {
        if (config_.source != CandidateSource::PtwFiltered)
            return;
        if (mapped_4k && (was_accessed || !config_.access_bit_filter))
            pcc2m_.touch(mem::vpnOf(vaddr, mem::PageSize::Huge2M));
    }

    /**
     * Victim-buffer feed (CandidateSource::L2Victims): one 4KB
     * translation was evicted from the last-level TLB.
     */
    void
    observeL2Victim(Vpn vpn, mem::PageSize size)
    {
        if (config_.source != CandidateSource::L2Victims)
            return;
        if (size == mem::PageSize::Base4K)
            pcc2m_.touch(mem::vpn4KTo2M(vpn));
    }

    /**
     * TLB-shootdown hook: invalidate any candidate overlapping the
     * range, in both PCCs (Sec. 3.3, Fig. 4 step C).
     */
    void
    shootdown(Addr base, u64 bytes)
    {
        const Vpn lo2m = mem::vpnOf(base, mem::PageSize::Huge2M);
        const Vpn hi2m =
            mem::vpnOf(base + bytes - 1, mem::PageSize::Huge2M);
        for (Vpn v = lo2m; v <= hi2m; ++v)
            pcc2m_.invalidate(v);
        const Vpn lo1g = mem::vpnOf(base, mem::PageSize::Huge1G);
        const Vpn hi1g =
            mem::vpnOf(base + bytes - 1, mem::PageSize::Huge1G);
        for (Vpn v = lo1g; v <= hi1g; ++v)
            pcc1g_.invalidate(v);
    }

    /**
     * 1GB promotion rule (Sec. 3.2.3): promote a 1GB region when its
     * collective walk frequency is at least `ratio` (512 by default)
     * times the frequency of the constituent 2MB candidate — i.e. the
     * 2MB granularity is not capturing the region's reuse.
     */
    bool
    prefer1G(Vpn region1g, u64 ratio = 512) const
    {
        const auto f1g = pcc1g_.frequencyOf(region1g);
        if (!f1g || *f1g == 0)
            return false;
        // Compare against the hottest 2MB constituent tracked.
        u64 best2m = 0;
        const Vpn first2m = region1g * mem::k2MPer1G;
        for (Vpn v = first2m; v < first2m + mem::k2MPer1G; ++v) {
            if (auto f = pcc2m_.frequencyOf(v))
                best2m = std::max(best2m, *f);
        }
        if (best2m == 0)
            return true; // walks at 1GB granularity only: 1GB suits
        return *f1g >= ratio * best2m;
    }

    /** Occupied entries across both PCCs (telemetry gauge). */
    u32
    occupancy() const
    {
        return pcc2m_.size() +
               (config_.enable_1g ? pcc1g_.size() : 0);
    }

    /**
     * The ranked head of the 2MB PCC, as region VPNs: the candidates
     * the OS would promote next. Telemetry tracks the churn of this
     * set across intervals (a stable head = HUBs identified).
     */
    std::vector<Vpn>
    topRegions(u32 k) const
    {
        std::vector<Vpn> regions;
        const auto ranked = pcc2m_.snapshot();
        const u32 n = std::min<u32>(k, static_cast<u32>(ranked.size()));
        regions.reserve(n);
        for (u32 i = 0; i < n; ++i)
            regions.push_back(ranked[i].region);
        return regions;
    }

    PromotionCandidateCache &pcc2m() { return pcc2m_; }
    PromotionCandidateCache &pcc1g() { return pcc1g_; }
    const PromotionCandidateCache &pcc2m() const { return pcc2m_; }
    const PromotionCandidateCache &pcc1g() const { return pcc1g_; }
    const PccUnitConfig &config() const { return config_; }

  private:
    PccUnitConfig config_;
    PromotionCandidateCache pcc2m_;
    PromotionCandidateCache pcc1g_;
};

} // namespace pccsim::pcc
