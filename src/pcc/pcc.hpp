/**
 * @file
 * The Promotion Candidate Cache (PCC) — the paper's core contribution
 * (Sec. 3.2, Fig. 3 right).
 *
 * A small, fully-associative hardware structure placed after the
 * last-level TLB. Each entry pairs a huge-page-aligned virtual address
 * prefix (2MB or 1GB VPN tag) with an N-bit saturating page-table-walk
 * frequency counter. On a qualifying page-table walk (the region's
 * accessed bit was already set, filtering cold misses):
 *
 *   - hit:  the entry's frequency increments; when any counter
 *           saturates, ALL counters are halved (decay), preserving
 *           relative order;
 *   - miss: the LFU entry (LRU on ties) is evicted if the PCC is full
 *           and the new tag is inserted with frequency 0.
 *
 * The OS periodically reads a ranked snapshot (the paper's "dump to a
 *  designated memory region") and promotes the top candidates; TLB
 * shootdowns triggered by those promotions invalidate the corresponding
 * PCC entries, so no stale candidate survives (Sec. 3.3).
 */

#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "util/types.hpp"

namespace pccsim::pcc {

/** Replacement policies evaluated in Sec. 3.2.1. */
enum class Replacement : u8
{
    LfuLruTie = 0, //!< default: least-frequent, least-recent tiebreak
    PureLru = 1,   //!< ablation: simpler pure-LRU victim selection
};

/** Configuration of one PCC instance. */
struct PccConfig
{
    u32 entries = 128;      //!< Table 2 default: 128 entries per core
    u32 counter_bits = 8;   //!< 8-bit saturating frequency counters
    Replacement replacement = Replacement::LfuLruTie;

    /** Saturation value of the frequency counters. */
    u64 counterMax() const { return (1ull << counter_bits) - 1; }
};

/** One ranked candidate as exposed to the OS. */
struct Candidate
{
    Vpn region;    //!< huge-page-aligned VPN (2MB or 1GB granularity)
    u64 frequency; //!< saturating-counter value at snapshot time
};

class PromotionCandidateCache
{
  public:
    explicit PromotionCandidateCache(PccConfig config = PccConfig{});

    /**
     * Record one qualifying page-table walk to `region`.
     * The caller (the Core) has already applied the accessed-bit cold
     * filter; every call here is a bona-fide candidate observation.
     */
    void touch(Vpn region);

    /** Invalidate `region` (TLB shootdown side effect). */
    bool invalidate(Vpn region);

    /** Current frequency of a region, if tracked. */
    std::optional<u64> frequencyOf(Vpn region) const;

    /**
     * Ranked, non-destructive snapshot: highest frequency first, most
     * recently touched first among equals — the order the hardware
     * dumps to memory for the OS (Fig. 4).
     */
    std::vector<Candidate> snapshot() const;

    /** Peek the single best candidate without copying the whole list. */
    std::optional<Candidate> top() const;

    /** Drop all entries (process exit / explicit reset). */
    void clear();

    u32 size() const { return static_cast<u32>(index_.size()); }
    u32 capacity() const { return config_.entries; }
    bool full() const { return size() == capacity(); }
    const PccConfig &config() const { return config_; }

    /**
     * Storage cost in bytes for the given tag width, reproducing the
     * paper's overhead arithmetic (Sec. 3.2.1): tag bits + counter bits
     * per entry, rounded up to whole bytes per entry.
     */
    static u64
    storageBytes(u32 entries, u32 tag_bits, u32 counter_bits)
    {
        const u64 bits_per_entry = tag_bits + counter_bits;
        return entries * ((bits_per_entry + 7) / 8);
    }

    /**
     * Observer of capacity evictions (telemetry attribution): invoked
     * with the victim region whenever an insertion displaces an entry.
     * Unset (the default) costs one branch per eviction; invalidate()
     * is not an eviction and never fires it.
     */
    void
    setEvictionHook(std::function<void(Vpn)> hook)
    {
        evicted_ = std::move(hook);
    }

    // --- statistics ---
    u64 hits() const { return hits_; }
    u64 misses() const { return misses_; }
    u64 evictions() const { return evictions_; }
    u64 decays() const { return decays_; }
    u64 invalidations() const { return invalidations_; }
    void resetStats();

  private:
    struct Entry
    {
        Vpn region = 0;
        u64 frequency = 0;
        u64 stamp = 0; //!< recency clock for LRU / tiebreak
    };

    u32 victimIndex() const;

    PccConfig config_;
    std::vector<Entry> entries_;
    std::unordered_map<Vpn, u32> index_; //!< region -> entries_ slot
    std::function<void(Vpn)> evicted_;
    u64 clock_ = 0;

    u64 hits_ = 0;
    u64 misses_ = 0;
    u64 evictions_ = 0;
    u64 decays_ = 0;
    u64 invalidations_ = 0;
};

} // namespace pccsim::pcc
